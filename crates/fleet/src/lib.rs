//! Shard-parallel multi-match orchestration for the Watchmen
//! reproduction.
//!
//! The paper evaluates Watchmen one match at a time, but its pitch is
//! population scale: cheat-resistant support for "distributed
//! multi-player online games" where a deployment hosts thousands of
//! simultaneous matches, not one. This crate is that hosting layer —
//! everything above a single match and below the process boundary:
//!
//! * [`pool`] — a std-only, hand-rolled work-stealing thread pool
//!   (per-worker deques, a global injector, parked idle workers) that
//!   schedules resumable tasks in bounded tick quanta, so long matches
//!   interleave with short ones instead of starving them, and isolates
//!   task panics with `catch_unwind`;
//! * [`cell`] — [`cell::MatchCell`], one complete shared-nothing match:
//!   its own simnet, lobby, secured node set and seed, with scripted
//!   cheat injection and a deterministic per-match report;
//! * [`fleet`] — lifecycle: expand a [`fleet::FleetConfig`] into seeded
//!   specs, run them, and fold the outcomes into a fleet report whose
//!   per-match lines are byte-identical across worker counts;
//! * [`rollup`] — fold the shard-private telemetry registries into
//!   per-shard and fleet-wide snapshots (bucket-level histogram merges,
//!   never averaged percentiles);
//! * [`campaign`] — the coordinated-adversary soak: every scripted
//!   campaign ([`watchmen_sim::campaign`]) run across many seeds on the
//!   same pool, graded per kind;
//! * [`population`] — the long-horizon reputation soak: thousands of
//!   statistical matches over one persistent identity population, with
//!   every match outcome folded into the durable reputation store
//!   (`watchmen-store`) so bans earned in one match block matchmaking
//!   in the next — measured as time-to-ban and false-ban rate.
//!
//! The `fleet_soak` example drives all of it and prints the
//! machine-parseable `fleet summary:` line ci.sh gates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cell;
pub mod fleet;
pub mod pool;
pub mod population;
pub mod rollup;

pub use campaign::{run_campaign_soak, CampaignCell, CampaignSoakConfig, CampaignSoakResult};
pub use cell::{MatchCell, MatchReport, MatchSpec};
pub use fleet::{
    run_fleet, run_fleet_on, run_fleet_specs, run_fleet_specs_on, FleetConfig, FleetResult,
    FleetView, TTD_BUDGET_FRAMES,
};
pub use pool::{
    default_workers, run_tasks, run_tasks_on, PoolConfig, Quantum, ShardContext, Task, TaskOutcome,
};
pub use population::{run_population, PopulationConfig, PopulationResult};
pub use rollup::{roll_up, FleetRollup, TickStats};
