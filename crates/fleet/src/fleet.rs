//! Fleet lifecycle: spec generation, the run loop, and the fleet report.
//!
//! A fleet is `matches` independent Watchmen matches scheduled across
//! the work-stealing pool. Every match's seed derives deterministically
//! from the fleet seed (one [`SplitMix64`] draw per match id), every
//! cell is shared-nothing, and completed reports are keyed by match id —
//! so a fleet's [`FleetResult::match_lines`] is byte-identical for any
//! worker count, which is the cheat-evidence property the orchestrator
//! inherits from the protocol: results depend on inputs, never on
//! scheduling.
//!
//! Cheat injection follows the repo's soak convention: every
//! `cheat_every`-th match scripts player 2 as a speed-hacker, so the
//! fleet-wide gate can assert both directions at population scale —
//! injected cheaters detected, honest matches free of false verdicts.

use std::sync::Arc;

use watchmen_crypto::rng::SplitMix64;
use watchmen_sim::quality::DetectionQuality;
use watchmen_telemetry::{Registry, Snapshot};

use crate::cell::{MatchCell, MatchReport, MatchSpec};
use crate::pool::{default_workers, run_tasks_on, PoolConfig, TaskOutcome, WorkerStats};
use crate::rollup::{roll_up, FleetRollup};

/// Which player a cheater-match scripts as the speed-hacker — the same
/// slot the deathmatch example uses.
const CHEATER_SLOT: u32 = 2;

/// The detection-quality SLO budget: an injected cheater must draw its
/// first severe verdict within this many frames of its first cheating
/// frame (p99). The scripted speed-hack trips the proxy's physics check
/// within one epoch, so 32 frames leaves slack for simnet latency
/// without letting a regression hide.
pub const TTD_BUDGET_FRAMES: u64 = 32;

/// Everything that defines one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Matches to run.
    pub matches: u64,
    /// Bots per match.
    pub players: usize,
    /// Playable frames per match.
    pub frames: u64,
    /// Worker threads.
    pub workers: usize,
    /// Per-worker in-flight match cap (bounds peak memory).
    pub max_local: usize,
    /// Frames a match advances per scheduler quantum.
    pub tick_quantum: u64,
    /// Fleet seed; every match seed derives from it.
    pub seed: u64,
    /// Script a cheater into every Nth match (0 = all-honest fleet).
    pub cheat_every: u64,
    /// Run the observability plane: audit collection plus the
    /// detection-quality join (default on; `observe=0` is the
    /// plane-overhead probe mode).
    pub observe: bool,
    /// Retain each match's audit stream as JSONL in its report (default
    /// off — memory-heavy at population scale).
    pub audit: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            matches: 512,
            players: 16,
            frames: 160,
            workers: default_workers(),
            max_local: 8,
            tick_quantum: 16,
            seed: 2013,
            cheat_every: 8,
            observe: true,
            audit: false,
        }
    }
}

impl FleetConfig {
    /// Reads `WATCHMEN_FLEET` — either a bare switch (`1`, `on`,
    /// `defaults`) for the default fleet, or a comma-separated spec (see
    /// [`FleetConfig::from_spec`]). Returns `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but does not parse — a misspelled
    /// gate should fail loudly, not silently soak the wrong fleet.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("WATCHMEN_FLEET").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if matches!(spec, "1" | "on" | "defaults") {
            return Some(FleetConfig::default());
        }
        match Self::from_spec(spec) {
            Ok(config) => Some(config),
            Err(e) => panic!("WATCHMEN_FLEET: {e}"),
        }
    }

    /// Parses a comma-separated fleet spec over the default config:
    /// `matches=256,players=16,frames=160,workers=4,cheat_every=8`, plus
    /// `seed=…`, `tick_quantum=…`, `max_local=…`, and the observability
    /// switches `observe=0|1` and `audit=0|1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut config = FleetConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let parse =
                |v: &str| v.parse::<u64>().map_err(|_| format!("bad number {v:?} for {key}"));
            match key {
                "matches" => config.matches = parse(value)?,
                "players" => config.players = parse(value)? as usize,
                "frames" => config.frames = parse(value)?,
                "workers" => config.workers = parse(value)? as usize,
                "max_local" => config.max_local = parse(value)? as usize,
                "tick_quantum" => config.tick_quantum = parse(value)?,
                "seed" => config.seed = parse(value)?,
                "cheat_every" => config.cheat_every = parse(value)?,
                "observe" => config.observe = parse(value)? != 0,
                "audit" => config.audit = parse(value)? != 0,
                other => return Err(format!("unknown fleet knob {other:?}")),
            }
        }
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), String> {
        if self.players < 3 {
            return Err("players must be ≥ 3 (proxies supervise third parties)".into());
        }
        if self.frames == 0 {
            return Err("frames must be ≥ 1".into());
        }
        if self.workers == 0 || self.max_local == 0 {
            return Err("workers and max_local must be ≥ 1".into());
        }
        Ok(())
    }

    /// Expands the config into one spec per match: seeds drawn from a
    /// [`SplitMix64`] over the fleet seed, a scripted cheater in every
    /// `cheat_every`-th match.
    #[must_use]
    pub fn specs(&self) -> Vec<MatchSpec> {
        let mut sm = SplitMix64::new(self.seed);
        (0..self.matches)
            .map(|id| {
                let mut spec = MatchSpec::new(id, self.players, self.frames, sm.next_u64())
                    .with_tick_quantum(self.tick_quantum);
                spec.observe = self.observe;
                spec.audit = self.audit;
                if self.cheat_every > 0 && id % self.cheat_every == 0 {
                    spec.with_cheater(CHEATER_SLOT)
                } else {
                    spec
                }
            })
            .collect()
    }
}

/// A live, scrapeable view of a running fleet's telemetry.
///
/// Created *before* the run and handed to [`run_fleet_on`], the view
/// holds the shard registries the pool workers record into, so a metrics
/// endpoint on another thread can [`FleetView::snapshot`] mid-soak: each
/// call re-merges every shard under a `shard=<i>` label and derives
/// `fleet_matches{state=…}` lifecycle gauges from the scheduler
/// counters. Cloning the view shares the same registries.
#[derive(Debug, Clone)]
pub struct FleetView {
    shards: Vec<Arc<Registry>>,
    matches: u64,
}

impl FleetView {
    /// A view over `workers` fresh shard registries for a fleet of
    /// `matches` matches.
    #[must_use]
    pub fn new(workers: usize, matches: u64) -> Self {
        FleetView {
            shards: (0..workers.max(1)).map(|_| Arc::new(Registry::new())).collect(),
            matches,
        }
    }

    /// The view shaped for `config` (one shard per worker).
    #[must_use]
    pub fn for_config(config: &FleetConfig) -> Self {
        FleetView::new(config.workers, config.matches)
    }

    /// The shard registries (index = worker).
    #[must_use]
    pub fn shards(&self) -> &[Arc<Registry>] {
        &self.shards
    }

    /// A point-in-time merge of every shard: all metrics re-labelled
    /// `shard=<i>`, plus `fleet_matches{state="pending"|"completed"|
    /// "panicked"}` gauges. Safe to call at any time, including while
    /// the fleet runs.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let merged = Registry::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let label = i.to_string();
            merged.merge_labeled(shard, &[("shard", &label)]);
        }
        let snap = merged.snapshot();
        let completed = snap.counter_sum("fleet_tasks_completed_total");
        let panicked = snap.counter_sum("fleet_tasks_panicked_total");
        let pending = self.matches.saturating_sub(completed + panicked);
        merged.gauge_with("fleet_matches", &[("state", "pending")]).set(pending as i64);
        merged.gauge_with("fleet_matches", &[("state", "completed")]).set(completed as i64);
        merged.gauge_with("fleet_matches", &[("state", "panicked")]).set(panicked as i64);
        merged.snapshot()
    }

    /// Help text for `name`, from whichever shard described it (plus the
    /// view's own derived gauges).
    #[must_use]
    pub fn help_for(&self, name: &str) -> Option<&'static str> {
        if name == "fleet_matches" {
            return Some("matches by lifecycle state across the fleet");
        }
        self.shards.iter().find_map(|s| s.help_for(name))
    }
}

/// What a fleet run produced: per-match reports, panic records,
/// scheduler stats and the telemetry rollup.
#[derive(Debug)]
pub struct FleetResult {
    /// Reports of completed matches, sorted by match id.
    pub reports: Vec<MatchReport>,
    /// `(match_id, panic message)` for matches that panicked, sorted by
    /// match id. The workers that ran them survived.
    pub panics: Vec<(u64, String)>,
    /// Per-worker scheduler counters.
    pub workers: Vec<WorkerStats>,
    /// Shard registries folded into per-shard and fleet-wide snapshots.
    pub rollup: FleetRollup,
}

impl FleetResult {
    /// Matches that ran to completion.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.reports.len() as u64
    }

    /// Total frames advanced across every worker (including drained
    /// partial quanta).
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.workers.iter().map(|w| w.ticks).sum()
    }

    /// Tasks stolen across shard deques.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Matches that scripted at least one cheater.
    #[must_use]
    pub fn cheater_matches(&self) -> u64 {
        self.reports.iter().filter(|r| r.cheaters > 0).count() as u64
    }

    /// Cheater matches whose every scripted cheater drew a severe
    /// verdict.
    #[must_use]
    pub fn detected_matches(&self) -> u64 {
        self.reports.iter().filter(|r| r.cheaters > 0 && r.detected).count() as u64
    }

    /// Severe verdicts against honest players, fleet-wide. The soak gate
    /// asserts zero.
    #[must_use]
    pub fn false_verdicts(&self) -> u64 {
        self.reports.iter().map(|r| r.false_verdicts).sum()
    }

    /// One deterministic line per match, sorted by match id — completed
    /// matches as their [`MatchReport::summary_line`], panicked matches
    /// as a `panicked` line. Byte-identical across worker counts for a
    /// fixed fleet seed.
    #[must_use]
    pub fn match_lines(&self) -> String {
        let mut lines: Vec<(u64, String)> = self
            .reports
            .iter()
            .map(|r| (r.match_id, r.summary_line()))
            .chain(self.panics.iter().map(|(id, msg)| (*id, format!("match {id}: panicked {msg}"))))
            .collect();
        lines.sort_by_key(|(id, _)| *id);
        let mut out = String::new();
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The fleet-wide detection-quality join: every completed match's
    /// [`MatchReport::quality`] merged into one confusion matrix and
    /// time-to-detect distribution.
    #[must_use]
    pub fn detection_quality(&self) -> DetectionQuality {
        let mut quality = DetectionQuality::default();
        for report in &self.reports {
            quality.merge(&report.quality);
        }
        quality
    }

    /// Whether the fleet meets the detection-quality SLO: zero false
    /// verdicts, every injected cheater detected, and time-to-detect p99
    /// within [`TTD_BUDGET_FRAMES`].
    #[must_use]
    pub fn slo_ok(&self) -> bool {
        let q = self.detection_quality();
        q.false_verdicts == 0
            && q.detected == q.injected
            && q.ttd_percentile(99.0).is_none_or(|p99| p99 <= TTD_BUDGET_FRAMES)
    }

    /// The machine-parseable detection-quality SLO line ci.sh gates on:
    /// headline counters, time-to-detect percentiles (in frames, `-`
    /// when no cheater was injected), the budget, the verdict, and one
    /// `check:<name>=tp/fp/fn` triple per check that fired.
    #[must_use]
    pub fn detection_summary(&self) -> String {
        let q = self.detection_quality();
        let pct = |p: f64| q.ttd_percentile(p).map_or_else(|| "-".to_owned(), |v| v.to_string());
        let mut line = format!(
            "detection slo: injected={i} detected={d} false_verdicts={fv} ttd_p50={p50} \
             ttd_p99={p99} budget={budget} ok={ok}",
            i = q.injected,
            d = q.detected,
            fv = q.false_verdicts,
            p50 = pct(50.0),
            p99 = pct(99.0),
            budget = TTD_BUDGET_FRAMES,
            ok = u64::from(self.slo_ok()),
        );
        for (check, c) in &q.per_check {
            use std::fmt::Write as _;
            let _ = write!(line, " check:{check}={}/{}/{}", c.true_pos, c.false_pos, c.false_neg);
        }
        line
    }

    /// The fleet's audit stream as JSONL, matches in id order, each line
    /// prefixed with its match id. Non-empty only when the fleet ran
    /// with `audit=1`; byte-identical across worker counts for a fixed
    /// seed — the property `tests/observability_e2e.rs` pins.
    #[must_use]
    pub fn audit_jsonl(&self) -> String {
        let mut out = String::new();
        for report in &self.reports {
            for line in &report.audit_lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// The machine-parseable fleet summary ci.sh gates on. Deterministic
    /// counters only — timing lives in the bench record, not here.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "fleet summary: matches={total} completed={c} panicked={p} workers={w} \
             cheater_matches={cm} detected_matches={dm} severe={s} false_verdicts={fv} \
             bad_signatures={bs} banned={b} messages={m} ticks={t} steals={st}",
            total = self.reports.len() + self.panics.len(),
            c = self.completed(),
            p = self.panics.len(),
            w = self.workers.len(),
            cm = self.cheater_matches(),
            dm = self.detected_matches(),
            s = self.reports.iter().map(|r| r.severe_verdicts).sum::<u64>(),
            fv = self.false_verdicts(),
            bs = self.reports.iter().map(|r| r.bad_signatures).sum::<u64>(),
            b = self.reports.iter().map(|r| r.banned).sum::<u64>(),
            m = self.reports.iter().map(|r| r.messages).sum::<u64>(),
            t = self.total_ticks(),
            st = self.total_steals(),
        )
    }
}

/// Runs a fleet from a config: expand specs, schedule, roll up.
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetResult {
    run_fleet_on(config, &FleetView::for_config(config))
}

/// Like [`run_fleet`], but records into the caller's [`FleetView`] so a
/// metrics endpoint can scrape the fleet while it runs.
///
/// # Panics
///
/// Panics if the view's shard count does not match `config.workers`.
#[must_use]
pub fn run_fleet_on(config: &FleetConfig, view: &FleetView) -> FleetResult {
    run_fleet_specs_on(
        config.specs(),
        &PoolConfig { workers: config.workers, max_local: config.max_local },
        view,
    )
}

/// The lower-level entry point tests use: run explicit specs on an
/// explicit pool shape.
///
/// # Panics
///
/// Panics on a zero worker count or in-flight cap; match panics are
/// captured per match, never propagated.
#[must_use]
pub fn run_fleet_specs(specs: Vec<MatchSpec>, pool: &PoolConfig) -> FleetResult {
    let matches = specs.len() as u64;
    run_fleet_specs_on(specs, pool, &FleetView::new(pool.workers, matches))
}

/// Runs explicit specs on an explicit pool shape, recording into the
/// caller's live [`FleetView`].
///
/// # Panics
///
/// Panics on a zero worker count or in-flight cap, or when the view's
/// shard count does not match `pool.workers`.
#[must_use]
pub fn run_fleet_specs_on(
    specs: Vec<MatchSpec>,
    pool: &PoolConfig,
    view: &FleetView,
) -> FleetResult {
    let ids: Vec<u64> = specs.iter().map(|s| s.match_id).collect();
    let cells: Vec<MatchCell> = specs.into_iter().map(MatchCell::new).collect();
    let run = run_tasks_on(pool, cells, view.shards().to_vec());

    let mut reports = Vec::new();
    let mut panics = Vec::new();
    for (slot, outcome) in run.outcomes.into_iter().enumerate() {
        match outcome {
            TaskOutcome::Completed(report) => reports.push(report),
            TaskOutcome::Panicked(msg) => panics.push((ids[slot], msg)),
        }
    }
    reports.sort_by_key(|r| r.match_id);
    panics.sort_by_key(|(id, _)| *id);

    let shards: Vec<Arc<Registry>> = run.shards;
    FleetResult { reports, panics, workers: run.workers, rollup: roll_up(&shards) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_expansion_is_deterministic_and_seeded() {
        let config = FleetConfig { matches: 16, ..FleetConfig::default() };
        let a = config.specs();
        let b = config.specs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // Distinct seeds per match.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "per-match seeds must be distinct");
        // Every 8th match carries the scripted cheater.
        for spec in &a {
            let expect = spec.match_id % 8 == 0;
            assert_eq!(!spec.cheaters.is_empty(), expect, "match {}", spec.match_id);
        }
    }

    #[test]
    fn spec_parsing_overrides_defaults_and_rejects_junk() {
        let c = FleetConfig::from_spec("matches=64,players=8,frames=90,workers=2,cheat_every=4")
            .expect("valid spec");
        assert_eq!(c.matches, 64);
        assert_eq!(c.players, 8);
        assert_eq!(c.frames, 90);
        assert_eq!(c.workers, 2);
        assert_eq!(c.cheat_every, 4);
        assert_eq!(c.seed, FleetConfig::default().seed, "unset knobs keep defaults");

        assert!(FleetConfig::from_spec("matches").is_err(), "missing value");
        assert!(FleetConfig::from_spec("bogus=1").is_err(), "unknown knob");
        assert!(FleetConfig::from_spec("matches=abc").is_err(), "bad number");
        assert!(FleetConfig::from_spec("players=2").is_err(), "too few players");
        assert!(FleetConfig::from_spec("workers=0").is_err(), "zero workers");
    }

    #[test]
    fn cheat_every_zero_means_all_honest() {
        let config = FleetConfig { matches: 12, cheat_every: 0, ..FleetConfig::default() };
        assert!(config.specs().iter().all(|s| s.cheaters.is_empty()));
    }

    #[test]
    fn observability_knobs_parse_and_propagate() {
        let c = FleetConfig::from_spec("observe=0,audit=1").expect("valid spec");
        assert!(!c.observe);
        assert!(c.audit);
        let specs =
            FleetConfig { matches: 3, observe: false, audit: true, ..FleetConfig::default() }
                .specs();
        assert!(specs.iter().all(|s| !s.observe && s.audit));
        // Defaults: plane on, JSONL retention off.
        let d = FleetConfig::default();
        assert!(d.observe && !d.audit);
    }

    #[test]
    fn detection_summary_meets_the_slo_and_the_view_tracks_states() {
        let config = FleetConfig {
            matches: 4,
            players: 8,
            frames: 120,
            workers: 2,
            cheat_every: 2,
            seed: 77,
            ..FleetConfig::default()
        };
        let view = FleetView::for_config(&config);
        let result = run_fleet_on(&config, &view);

        let q = result.detection_quality();
        assert_eq!(q.injected, 2, "matches 0 and 2 script a cheater");
        assert_eq!(q.detected, 2, "{}", result.match_lines());
        assert_eq!(q.false_verdicts, 0);
        assert!(result.slo_ok(), "{}", result.detection_summary());

        let line = result.detection_summary();
        assert!(
            line.starts_with("detection slo: injected=2 detected=2 false_verdicts=0"),
            "{line}"
        );
        assert!(line.contains(" ok=1"), "{line}");
        assert!(line.contains(" check:position="), "{line}");

        // The live view: shard-labelled metrics plus lifecycle gauges,
        // settled now that the run is over.
        let snap = view.snapshot();
        assert!(snap.get_with("fleet_quanta_total", &[("shard", "0")]).is_some());
        use watchmen_telemetry::MetricValue;
        assert_eq!(
            snap.get_with("fleet_matches", &[("state", "completed")]),
            Some(&MetricValue::Gauge(4))
        );
        assert_eq!(
            snap.get_with("fleet_matches", &[("state", "pending")]),
            Some(&MetricValue::Gauge(0))
        );
        assert_eq!(
            view.help_for("fleet_matches"),
            Some("matches by lifecycle state across the fleet")
        );
        assert!(view.help_for("fleet_quanta_total").is_some(), "shard help must surface");
    }

    #[test]
    fn audit_jsonl_is_empty_unless_requested() {
        let config = FleetConfig {
            matches: 2,
            players: 8,
            frames: 60,
            workers: 1,
            cheat_every: 2,
            seed: 9,
            ..FleetConfig::default()
        };
        let silent = run_fleet(&config);
        assert!(silent.audit_jsonl().is_empty());
        let audited = run_fleet(&FleetConfig { audit: true, ..config });
        let jsonl = audited.audit_jsonl();
        assert!(!jsonl.is_empty());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"match\":")), "every line tagged");
    }

    #[test]
    fn summary_line_shape_is_machine_parseable() {
        let result = FleetResult {
            reports: Vec::new(),
            panics: Vec::new(),
            workers: Vec::new(),
            rollup: roll_up(&[]),
        };
        let line = result.summary_line();
        assert!(line.starts_with("fleet summary: "));
        for field in ["matches=", "completed=", "false_verdicts=", "detected_matches="] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
}
