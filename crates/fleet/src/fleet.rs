//! Fleet lifecycle: spec generation, the run loop, and the fleet report.
//!
//! A fleet is `matches` independent Watchmen matches scheduled across
//! the work-stealing pool. Every match's seed derives deterministically
//! from the fleet seed (one [`SplitMix64`] draw per match id), every
//! cell is shared-nothing, and completed reports are keyed by match id —
//! so a fleet's [`FleetResult::match_lines`] is byte-identical for any
//! worker count, which is the cheat-evidence property the orchestrator
//! inherits from the protocol: results depend on inputs, never on
//! scheduling.
//!
//! Cheat injection follows the repo's soak convention: every
//! `cheat_every`-th match scripts player 2 as a speed-hacker, so the
//! fleet-wide gate can assert both directions at population scale —
//! injected cheaters detected, honest matches free of false verdicts.

use std::sync::Arc;

use watchmen_crypto::rng::SplitMix64;
use watchmen_telemetry::Registry;

use crate::cell::{MatchCell, MatchReport, MatchSpec};
use crate::pool::{default_workers, run_tasks, PoolConfig, TaskOutcome, WorkerStats};
use crate::rollup::{roll_up, FleetRollup};

/// Which player a cheater-match scripts as the speed-hacker — the same
/// slot the deathmatch example uses.
const CHEATER_SLOT: u32 = 2;

/// Everything that defines one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Matches to run.
    pub matches: u64,
    /// Bots per match.
    pub players: usize,
    /// Playable frames per match.
    pub frames: u64,
    /// Worker threads.
    pub workers: usize,
    /// Per-worker in-flight match cap (bounds peak memory).
    pub max_local: usize,
    /// Frames a match advances per scheduler quantum.
    pub tick_quantum: u64,
    /// Fleet seed; every match seed derives from it.
    pub seed: u64,
    /// Script a cheater into every Nth match (0 = all-honest fleet).
    pub cheat_every: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            matches: 512,
            players: 16,
            frames: 160,
            workers: default_workers(),
            max_local: 8,
            tick_quantum: 16,
            seed: 2013,
            cheat_every: 8,
        }
    }
}

impl FleetConfig {
    /// Reads `WATCHMEN_FLEET` — either a bare switch (`1`, `on`,
    /// `defaults`) for the default fleet, or a comma-separated spec (see
    /// [`FleetConfig::from_spec`]). Returns `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but does not parse — a misspelled
    /// gate should fail loudly, not silently soak the wrong fleet.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("WATCHMEN_FLEET").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        if matches!(spec, "1" | "on" | "defaults") {
            return Some(FleetConfig::default());
        }
        match Self::from_spec(spec) {
            Ok(config) => Some(config),
            Err(e) => panic!("WATCHMEN_FLEET: {e}"),
        }
    }

    /// Parses a comma-separated fleet spec over the default config:
    /// `matches=256,players=16,frames=160,workers=4,cheat_every=8`, plus
    /// `seed=…`, `tick_quantum=…` and `max_local=…`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut config = FleetConfig::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let parse =
                |v: &str| v.parse::<u64>().map_err(|_| format!("bad number {v:?} for {key}"));
            match key {
                "matches" => config.matches = parse(value)?,
                "players" => config.players = parse(value)? as usize,
                "frames" => config.frames = parse(value)?,
                "workers" => config.workers = parse(value)? as usize,
                "max_local" => config.max_local = parse(value)? as usize,
                "tick_quantum" => config.tick_quantum = parse(value)?,
                "seed" => config.seed = parse(value)?,
                "cheat_every" => config.cheat_every = parse(value)?,
                other => return Err(format!("unknown fleet knob {other:?}")),
            }
        }
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), String> {
        if self.players < 3 {
            return Err("players must be ≥ 3 (proxies supervise third parties)".into());
        }
        if self.frames == 0 {
            return Err("frames must be ≥ 1".into());
        }
        if self.workers == 0 || self.max_local == 0 {
            return Err("workers and max_local must be ≥ 1".into());
        }
        Ok(())
    }

    /// Expands the config into one spec per match: seeds drawn from a
    /// [`SplitMix64`] over the fleet seed, a scripted cheater in every
    /// `cheat_every`-th match.
    #[must_use]
    pub fn specs(&self) -> Vec<MatchSpec> {
        let mut sm = SplitMix64::new(self.seed);
        (0..self.matches)
            .map(|id| {
                let spec = MatchSpec::new(id, self.players, self.frames, sm.next_u64())
                    .with_tick_quantum(self.tick_quantum);
                if self.cheat_every > 0 && id % self.cheat_every == 0 {
                    spec.with_cheater(CHEATER_SLOT)
                } else {
                    spec
                }
            })
            .collect()
    }
}

/// What a fleet run produced: per-match reports, panic records,
/// scheduler stats and the telemetry rollup.
#[derive(Debug)]
pub struct FleetResult {
    /// Reports of completed matches, sorted by match id.
    pub reports: Vec<MatchReport>,
    /// `(match_id, panic message)` for matches that panicked, sorted by
    /// match id. The workers that ran them survived.
    pub panics: Vec<(u64, String)>,
    /// Per-worker scheduler counters.
    pub workers: Vec<WorkerStats>,
    /// Shard registries folded into per-shard and fleet-wide snapshots.
    pub rollup: FleetRollup,
}

impl FleetResult {
    /// Matches that ran to completion.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.reports.len() as u64
    }

    /// Total frames advanced across every worker (including drained
    /// partial quanta).
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.workers.iter().map(|w| w.ticks).sum()
    }

    /// Tasks stolen across shard deques.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Matches that scripted at least one cheater.
    #[must_use]
    pub fn cheater_matches(&self) -> u64 {
        self.reports.iter().filter(|r| r.cheaters > 0).count() as u64
    }

    /// Cheater matches whose every scripted cheater drew a severe
    /// verdict.
    #[must_use]
    pub fn detected_matches(&self) -> u64 {
        self.reports.iter().filter(|r| r.cheaters > 0 && r.detected).count() as u64
    }

    /// Severe verdicts against honest players, fleet-wide. The soak gate
    /// asserts zero.
    #[must_use]
    pub fn false_verdicts(&self) -> u64 {
        self.reports.iter().map(|r| r.false_verdicts).sum()
    }

    /// One deterministic line per match, sorted by match id — completed
    /// matches as their [`MatchReport::summary_line`], panicked matches
    /// as a `panicked` line. Byte-identical across worker counts for a
    /// fixed fleet seed.
    #[must_use]
    pub fn match_lines(&self) -> String {
        let mut lines: Vec<(u64, String)> = self
            .reports
            .iter()
            .map(|r| (r.match_id, r.summary_line()))
            .chain(self.panics.iter().map(|(id, msg)| (*id, format!("match {id}: panicked {msg}"))))
            .collect();
        lines.sort_by_key(|(id, _)| *id);
        let mut out = String::new();
        for (_, line) in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The machine-parseable fleet summary ci.sh gates on. Deterministic
    /// counters only — timing lives in the bench record, not here.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "fleet summary: matches={total} completed={c} panicked={p} workers={w} \
             cheater_matches={cm} detected_matches={dm} severe={s} false_verdicts={fv} \
             bad_signatures={bs} banned={b} messages={m} ticks={t} steals={st}",
            total = self.reports.len() + self.panics.len(),
            c = self.completed(),
            p = self.panics.len(),
            w = self.workers.len(),
            cm = self.cheater_matches(),
            dm = self.detected_matches(),
            s = self.reports.iter().map(|r| r.severe_verdicts).sum::<u64>(),
            fv = self.false_verdicts(),
            bs = self.reports.iter().map(|r| r.bad_signatures).sum::<u64>(),
            b = self.reports.iter().map(|r| r.banned).sum::<u64>(),
            m = self.reports.iter().map(|r| r.messages).sum::<u64>(),
            t = self.total_ticks(),
            st = self.total_steals(),
        )
    }
}

/// Runs a fleet from a config: expand specs, schedule, roll up.
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetResult {
    run_fleet_specs(
        config.specs(),
        &PoolConfig { workers: config.workers, max_local: config.max_local },
    )
}

/// The lower-level entry point tests use: run explicit specs on an
/// explicit pool shape.
///
/// # Panics
///
/// Panics on a zero worker count or in-flight cap; match panics are
/// captured per match, never propagated.
#[must_use]
pub fn run_fleet_specs(specs: Vec<MatchSpec>, pool: &PoolConfig) -> FleetResult {
    let ids: Vec<u64> = specs.iter().map(|s| s.match_id).collect();
    let cells: Vec<MatchCell> = specs.into_iter().map(MatchCell::new).collect();
    let run = run_tasks(pool, cells);

    let mut reports = Vec::new();
    let mut panics = Vec::new();
    for (slot, outcome) in run.outcomes.into_iter().enumerate() {
        match outcome {
            TaskOutcome::Completed(report) => reports.push(report),
            TaskOutcome::Panicked(msg) => panics.push((ids[slot], msg)),
        }
    }
    reports.sort_by_key(|r| r.match_id);
    panics.sort_by_key(|(id, _)| *id);

    let shards: Vec<Arc<Registry>> = run.shards;
    FleetResult { reports, panics, workers: run.workers, rollup: roll_up(&shards) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_expansion_is_deterministic_and_seeded() {
        let config = FleetConfig { matches: 16, ..FleetConfig::default() };
        let a = config.specs();
        let b = config.specs();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        // Distinct seeds per match.
        let mut seeds: Vec<u64> = a.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "per-match seeds must be distinct");
        // Every 8th match carries the scripted cheater.
        for spec in &a {
            let expect = spec.match_id % 8 == 0;
            assert_eq!(!spec.cheaters.is_empty(), expect, "match {}", spec.match_id);
        }
    }

    #[test]
    fn spec_parsing_overrides_defaults_and_rejects_junk() {
        let c = FleetConfig::from_spec("matches=64,players=8,frames=90,workers=2,cheat_every=4")
            .expect("valid spec");
        assert_eq!(c.matches, 64);
        assert_eq!(c.players, 8);
        assert_eq!(c.frames, 90);
        assert_eq!(c.workers, 2);
        assert_eq!(c.cheat_every, 4);
        assert_eq!(c.seed, FleetConfig::default().seed, "unset knobs keep defaults");

        assert!(FleetConfig::from_spec("matches").is_err(), "missing value");
        assert!(FleetConfig::from_spec("bogus=1").is_err(), "unknown knob");
        assert!(FleetConfig::from_spec("matches=abc").is_err(), "bad number");
        assert!(FleetConfig::from_spec("players=2").is_err(), "too few players");
        assert!(FleetConfig::from_spec("workers=0").is_err(), "zero workers");
    }

    #[test]
    fn cheat_every_zero_means_all_honest() {
        let config = FleetConfig { matches: 12, cheat_every: 0, ..FleetConfig::default() };
        assert!(config.specs().iter().all(|s| s.cheaters.is_empty()));
    }

    #[test]
    fn summary_line_shape_is_machine_parseable() {
        let result = FleetResult {
            reports: Vec::new(),
            panics: Vec::new(),
            workers: Vec::new(),
            rollup: roll_up(&[]),
        };
        let line = result.summary_line();
        assert!(line.starts_with("fleet summary: "));
        for field in ["matches=", "completed=", "false_verdicts=", "detected_matches="] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
}
