//! Figure 1: presence heatmaps.
//!
//! Wraps [`watchmen_game::heatmap`] into the experiment interface: runs
//! the standard deathmatch and reports the log-normalized presence grid
//! plus the concentration statistics that justify the paper's claim that
//! "players show an exponential presence in some areas of the game".

use watchmen_game::heatmap::Heatmap;

use crate::report::pct;
use crate::workload::Workload;

/// The Figure 1 data: heatmap plus concentration summary.
#[derive(Debug)]
pub struct HeatReport {
    /// The presence heatmap over the map grid.
    pub heatmap: Heatmap,
    /// Share of presence held by the busiest 10 % of visited cells.
    pub top_decile_share: f64,
    /// Gini coefficient of the presence distribution.
    pub gini: f64,
    /// Total presence samples.
    pub samples: u64,
}

/// Builds the heatmap from a workload.
#[must_use]
pub fn run_heat(workload: &Workload) -> HeatReport {
    let heatmap = Heatmap::from_trace(&workload.map, &workload.trace);
    HeatReport {
        top_decile_share: heatmap.top_share(0.1),
        gini: heatmap.gini(),
        samples: heatmap.total(),
        heatmap,
    }
}

/// Renders the heatmap and its concentration statistics.
#[must_use]
pub fn format_heat(report: &HeatReport) -> String {
    format!(
        "{}\n\nsamples: {}   top-decile share: {}   gini: {:.3}",
        report.heatmap.to_ascii(),
        report.samples,
        pct(report.top_decile_share),
        report.gini,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    #[test]
    fn heat_report_shows_concentration() {
        let w = standard_workload(16, 2, 800);
        let r = run_heat(&w);
        assert!(r.samples > 5000);
        assert!(r.top_decile_share > 0.2, "share {}", r.top_decile_share);
        assert!(r.gini > 0.2, "gini {}", r.gini);
    }

    #[test]
    fn formatting_contains_grid_and_stats() {
        let w = standard_workload(8, 2, 100);
        let s = format_heat(&run_heat(&w));
        assert!(s.contains("gini"));
        assert!(s.lines().count() > 10);
    }
}
