//! Shared experiment workloads.
//!
//! The paper's headline runs use "a 48-player trace from a Quake III game
//! in the q3dm17 map"; [`standard_workload`] is the equivalent synthetic
//! trace, bundled with the map it was played on.

use watchmen_game::trace::GameTrace;
use watchmen_game::GameConfig;
use watchmen_world::{maps, GameMap};

/// A trace plus the map it was recorded on — what every experiment
/// consumes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The recorded game.
    pub trace: GameTrace,
    /// The map it was played on.
    pub map: GameMap,
}

impl Workload {
    /// Number of players.
    #[must_use]
    pub fn players(&self) -> usize {
        self.trace.players
    }

    /// Number of frames.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.trace.len()
    }
}

/// The paper's headline workload: a 48-player deathmatch on the
/// q3dm17-like map.
///
/// `frames` controls the length (the paper's sessions run minutes; 1200
/// frames = one minute of play).
///
/// # Examples
///
/// ```
/// let w = watchmen_sim::workload::standard_workload(8, 42, 50);
/// assert_eq!(w.players(), 8);
/// assert_eq!(w.frames(), 50);
/// ```
#[must_use]
pub fn standard_workload(players: usize, seed: u64, frames: u64) -> Workload {
    let map = maps::q3dm17_like();
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    Workload { trace: GameTrace::record(config, players, seed, frames), map }
}

/// A smaller, denser arena workload for quick tests.
#[must_use]
pub fn arena_workload(players: usize, seed: u64, frames: u64) -> Workload {
    let map = maps::arena(16, 10.0);
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    Workload { trace: GameTrace::record(config, players, seed, frames), map }
}

/// Which map a [`WorkloadBuilder`] records on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapChoice {
    /// The paper's q3dm17-like headline map.
    Standard,
    /// An open square arena of `cells`×`cells` tiles of `cell_size` world
    /// units — the map of choice for population-scale runs: open geometry
    /// keeps the position checker's wall corner cases out of play, so
    /// honest traffic scores clean.
    Arena {
        /// Tiles per side (≥ 4).
        cells: usize,
        /// Tile edge length in world units.
        cell_size: f64,
    },
}

/// A reusable per-match workload builder — what a multi-match
/// orchestrator calls thousands of times with distinct seeds. Identical
/// parameters always build identical workloads, so a match is fully
/// reproducible from its spec alone.
///
/// # Examples
///
/// ```
/// use watchmen_sim::workload::WorkloadBuilder;
///
/// let w = WorkloadBuilder::new(8).seed(7).frames(40).arena(16, 10.0).build();
/// assert_eq!(w.players(), 8);
/// assert_eq!(w.frames(), 40);
/// assert_eq!(w.map.name(), "arena");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadBuilder {
    players: usize,
    seed: u64,
    frames: u64,
    map: MapChoice,
}

impl WorkloadBuilder {
    /// Starts a builder for a `players`-bot match (seed 0, 1200 frames,
    /// 32-cell arena by default).
    #[must_use]
    pub fn new(players: usize) -> Self {
        WorkloadBuilder {
            players,
            seed: 0,
            frames: 1200,
            map: MapChoice::Arena { cells: 32, cell_size: 10.0 },
        }
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace length in frames.
    #[must_use]
    pub fn frames(mut self, frames: u64) -> Self {
        self.frames = frames;
        self
    }

    /// Records on an open arena map.
    #[must_use]
    pub fn arena(mut self, cells: usize, cell_size: f64) -> Self {
        self.map = MapChoice::Arena { cells, cell_size };
        self
    }

    /// Records on the q3dm17-like headline map.
    #[must_use]
    pub fn standard_map(mut self) -> Self {
        self.map = MapChoice::Standard;
        self
    }

    /// Records the trace and bundles it with its map.
    #[must_use]
    pub fn build(&self) -> Workload {
        let map = match self.map {
            MapChoice::Standard => maps::q3dm17_like(),
            MapChoice::Arena { cells, cell_size } => maps::arena(cells, cell_size),
        };
        let config = GameConfig { map: map.clone(), ..GameConfig::default() };
        Workload { trace: GameTrace::record(config, self.players, self.seed, self.frames), map }
    }
}

/// The per-match workload a fleet cell plays: an open 32-cell arena, the
/// geometry the soak gates calibrate their zero-false-verdict assertion
/// on.
#[must_use]
pub fn match_workload(players: usize, seed: u64, frames: u64) -> Workload {
    WorkloadBuilder::new(players).seed(seed).frames(frames).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_shape() {
        let w = standard_workload(8, 1, 30);
        assert_eq!(w.players(), 8);
        assert_eq!(w.frames(), 30);
        assert_eq!(w.map.name(), "q3dm17-like");
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = standard_workload(4, 9, 20);
        let b = standard_workload(4, 9, 20);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn arena_workload_uses_arena() {
        let w = arena_workload(4, 1, 10);
        assert_eq!(w.map.name(), "arena");
    }

    #[test]
    fn builder_matches_free_functions() {
        let a = WorkloadBuilder::new(4).seed(9).frames(20).standard_map().build();
        let b = standard_workload(4, 9, 20);
        assert_eq!(a.trace, b.trace);
        let c = WorkloadBuilder::new(4).seed(9).frames(20).arena(16, 10.0).build();
        let d = arena_workload(4, 9, 20);
        assert_eq!(c.trace, d.trace);
    }

    #[test]
    fn match_workload_is_deterministic_per_seed() {
        let a = match_workload(6, 31, 25);
        let b = match_workload(6, 31, 25);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.map.name(), "arena");
        let c = match_workload(6, 32, 25);
        assert_ne!(a.trace, c.trace, "distinct seeds must diverge");
    }
}
