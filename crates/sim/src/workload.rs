//! Shared experiment workloads.
//!
//! The paper's headline runs use "a 48-player trace from a Quake III game
//! in the q3dm17 map"; [`standard_workload`] is the equivalent synthetic
//! trace, bundled with the map it was played on.

use watchmen_game::trace::GameTrace;
use watchmen_game::GameConfig;
use watchmen_world::{maps, GameMap};

/// A trace plus the map it was recorded on — what every experiment
/// consumes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The recorded game.
    pub trace: GameTrace,
    /// The map it was played on.
    pub map: GameMap,
}

impl Workload {
    /// Number of players.
    #[must_use]
    pub fn players(&self) -> usize {
        self.trace.players
    }

    /// Number of frames.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.trace.len()
    }
}

/// The paper's headline workload: a 48-player deathmatch on the
/// q3dm17-like map.
///
/// `frames` controls the length (the paper's sessions run minutes; 1200
/// frames = one minute of play).
///
/// # Examples
///
/// ```
/// let w = watchmen_sim::workload::standard_workload(8, 42, 50);
/// assert_eq!(w.players(), 8);
/// assert_eq!(w.frames(), 50);
/// ```
#[must_use]
pub fn standard_workload(players: usize, seed: u64, frames: u64) -> Workload {
    let map = maps::q3dm17_like();
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    Workload { trace: GameTrace::record(config, players, seed, frames), map }
}

/// A smaller, denser arena workload for quick tests.
#[must_use]
pub fn arena_workload(players: usize, seed: u64, frames: u64) -> Workload {
    let map = maps::arena(16, 10.0);
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    Workload { trace: GameTrace::record(config, players, seed, frames), map }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_shape() {
        let w = standard_workload(8, 1, 30);
        assert_eq!(w.players(), 8);
        assert_eq!(w.frames(), 30);
        assert_eq!(w.map.name(), "q3dm17-like");
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = standard_workload(4, 9, 20);
        let b = standard_workload(4, 9, 20);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn arena_workload_uses_arena() {
        let w = arena_workload(4, 1, 10);
        assert_eq!(w.map.name(), "arena");
    }
}
