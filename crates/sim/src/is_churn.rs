//! Section VI's subscriber-retention statistics.
//!
//! "To decide on the retention period, one must calculate the average
//! change frequency in subscriptions. In our experiments, nearly 50% of
//! the players in the IS change after 40 frames, less than 10% last more
//! than 300 frames. … In a frame, on average 88% of the players in IS were
//! already in IS in the previous frame."

use std::collections::BTreeSet;

use watchmen_core::subscription::{compute_sets, NoRecency};
use watchmen_core::WatchmenConfig;
use watchmen_game::PlayerId;

use crate::report::{pct, render_table};
use crate::workload::Workload;

/// Interest-set churn statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Fraction of IS memberships surviving at least `k` frames, for each
    /// probed horizon (contiguous spells; flicker ends a spell).
    pub survival: Vec<(u64, f64)>,
    /// `P(x ∈ IS(t+k) | x ∈ IS(t))` for each probed horizon — the paper's
    /// "players in the IS change after k frames" statistic (robust to
    /// members briefly flickering out and back).
    pub lag_retention: Vec<(u64, f64)>,
    /// P(member of IS at frame f | member at f−1), averaged over frames.
    pub frame_to_frame_retention: f64,
    /// Fraction of completed IS spells longer than 300 frames.
    pub long_spell_fraction: f64,
    /// Number of completed spells observed.
    pub spells: usize,
    /// Mean spell length in frames.
    pub mean_spell_frames: f64,
}

/// Runs the churn measurement: tracks every (observer, member) interest
/// spell over the trace.
#[must_use]
#[allow(clippy::needless_range_loop)] // per-player membership tables are index-parallel
pub fn run_is_churn(workload: &Workload, config: &WatchmenConfig, horizons: &[u64]) -> ChurnReport {
    let trace = &workload.trace;
    let n = trace.players;

    // Per-frame IS membership per observer.
    let memberships: Vec<Vec<BTreeSet<PlayerId>>> = (0..trace.len())
        .map(|f| {
            let states = &trace.frames[f].states;
            (0..n)
                .map(|p| {
                    compute_sets(PlayerId(p as u32), states, &workload.map, config, &NoRecency)
                        .interest
                        .into_iter()
                        .collect()
                })
                .collect()
        })
        .collect();

    // Frame-to-frame retention.
    let mut retained = 0u64;
    let mut present = 0u64;
    for f in 1..memberships.len() {
        for p in 0..n {
            for member in &memberships[f][p] {
                present += 1;
                if memberships[f - 1][p].contains(member) {
                    retained += 1;
                }
            }
        }
    }
    let frame_to_frame_retention =
        if present == 0 { 0.0 } else { retained as f64 / present as f64 };

    // Spell lengths: a spell starts when a member enters and ends when it
    // leaves. Spells still open at the end of the trace are discarded
    // (right-censored).
    let mut spells: Vec<u64> = Vec::new();
    for p in 0..n {
        let mut open: std::collections::BTreeMap<PlayerId, u64> = Default::default();
        for (f, frame_memberships) in memberships.iter().enumerate() {
            let current = &frame_memberships[p];
            // Close ended spells.
            let ended: Vec<PlayerId> =
                open.keys().copied().filter(|m| !current.contains(m)).collect();
            for m in ended {
                let start = open.remove(&m).expect("tracked");
                spells.push(f as u64 - start);
            }
            // Open new spells.
            for m in current {
                open.entry(*m).or_insert(f as u64);
            }
        }
    }

    let survival: Vec<(u64, f64)> = horizons
        .iter()
        .map(|&h| {
            let alive = spells.iter().filter(|&&s| s >= h).count();
            (h, if spells.is_empty() { 0.0 } else { alive as f64 / spells.len() as f64 })
        })
        .collect();

    // Lag retention: membership overlap between IS(t) and IS(t+k).
    let lag_retention: Vec<(u64, f64)> = horizons
        .iter()
        .map(|&h| {
            let mut kept = 0u64;
            let mut total = 0u64;
            let lag = h as usize;
            for t in 0..memberships.len().saturating_sub(lag) {
                for p in 0..n {
                    for member in &memberships[t][p] {
                        total += 1;
                        if memberships[t + lag][p].contains(member) {
                            kept += 1;
                        }
                    }
                }
            }
            (h, if total == 0 { 0.0 } else { kept as f64 / total as f64 })
        })
        .collect();
    let long_spell_fraction = if spells.is_empty() {
        0.0
    } else {
        spells.iter().filter(|&&s| s > 300).count() as f64 / spells.len() as f64
    };
    let mean_spell_frames = if spells.is_empty() {
        0.0
    } else {
        spells.iter().sum::<u64>() as f64 / spells.len() as f64
    };

    ChurnReport {
        survival,
        lag_retention,
        frame_to_frame_retention,
        long_spell_fraction,
        spells: spells.len(),
        mean_spell_frames,
    }
}

/// Renders the retention statistics.
#[must_use]
pub fn format_churn(report: &ChurnReport) -> String {
    let rows: Vec<Vec<String>> = report
        .survival
        .iter()
        .zip(&report.lag_retention)
        .map(|(&(h, s), &(_, r))| vec![format!("{h}"), pct(s), pct(r)])
        .collect();
    format!(
        "{}\nframe-to-frame IS retention: {}\nspells >300 frames: {}\nspells observed: {} (mean {:.1} frames)",
        render_table(
            &["frames k", "contiguous spell survives ≥ k", "still in IS after k (lag)"],
            &rows
        ),
        pct(report.frame_to_frame_retention),
        pct(report.long_spell_fraction),
        report.spells,
        report.mean_spell_frames,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn report() -> ChurnReport {
        let w = standard_workload(16, 7, 400);
        run_is_churn(&w, &WatchmenConfig::default(), &[1, 10, 40, 100, 300])
    }

    #[test]
    fn retention_is_high_frame_to_frame() {
        let r = report();
        // The paper observes ~88%; the synthetic workload should be in the
        // same high-retention regime.
        assert!(r.frame_to_frame_retention > 0.7, "retention {}", r.frame_to_frame_retention);
    }

    #[test]
    fn survival_is_monotone_decreasing() {
        let r = report();
        for w in r.survival.windows(2) {
            assert!(w[0].1 >= w[1].1, "survival not monotone: {:?}", r.survival);
        }
    }

    #[test]
    fn lag_retention_decays_then_plateaus() {
        // Short-lag retention is high (stable attention), medium-lag is
        // lower (churn), and very long lags plateau near the base rate of
        // re-encountering the same players at hotspots — not monotone, by
        // nature.
        let r = report();
        let at = |xs: &[(u64, f64)], h: u64| xs.iter().find(|&&(x, _)| x == h).unwrap().1;
        assert!(at(&r.lag_retention, 1) > at(&r.lag_retention, 40));
        // Flicker (leave-and-return) ends spells but not lag membership,
        // so at medium horizons lag retention exceeds spell survival.
        assert!(at(&r.lag_retention, 40) >= at(&r.survival, 40));
        assert!(at(&r.lag_retention, 40) > 0.0);
    }

    #[test]
    fn meaningful_churn_exists() {
        let r = report();
        assert!(r.spells > 50, "too few spells: {}", r.spells);
        // Substantial turnover by 40 frames (paper: ~50% change).
        let at_40 = r.survival.iter().find(|&&(h, _)| h == 40).unwrap().1;
        assert!(at_40 < 0.9, "IS nearly static: {at_40}");
        // Long spells are the minority.
        assert!(r.long_spell_fraction < 0.5);
    }

    #[test]
    fn formatting_reports_key_stats() {
        let s = format_churn(&report());
        assert!(s.contains("frame-to-frame"));
        assert!(s.contains(">300"));
    }
}
