//! Figure 6: verification success rates.
//!
//! "We set up an experiment where a cheater sends up to 10% invalid cheat
//! messages. We measure the overall success ratio (high confidence
//! detection by one of the honest players) of different verifications,
//! where false positives (honest messages wrongly identified as cheats)
//! are limited to a maximum of 5%."
//!
//! For each verification family the experiment: (1) collects the scores
//! the verifier assigns to *honest* messages from the trace, (2) picks the
//! lowest 1–10 threshold keeping honest flags ≤ 5 %, then (3) measures the
//! fraction of injected cheat messages at or above the threshold.

use std::sync::Arc;

use watchmen_core::cheat::CheatInjector;
use watchmen_core::dead_reckoning::Guidance;
use watchmen_core::msg::KillClaim;
use watchmen_core::subscription::{compute_sets, NoRecency};
use watchmen_core::verify::{checks, Verifier};
use watchmen_core::WatchmenConfig;
use watchmen_crypto::rng::Xoshiro256;
use watchmen_game::{GameEvent, PlayerId};
use watchmen_math::poly::Polyline;
use watchmen_math::Vec3;
use watchmen_telemetry::trace::{EventKind, Phase, TraceEvent, TraceId};
use watchmen_telemetry::FlightRecorder;
use watchmen_world::PhysicsConfig;

use crate::report::{pct, render_table};
use crate::workload::Workload;

/// The verification families of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Successive position updates against game physics.
    Position,
    /// Kill claims against weapon/distance/visibility/attention.
    Kill,
    /// Guidance messages against the actual trajectory.
    Guidance,
    /// IS subscriptions against the attention metric.
    IsSubscription,
    /// VS subscriptions against the vision cone.
    VsSubscription,
}

impl CheckKind {
    /// All families in figure order.
    pub const ALL: [CheckKind; 5] = [
        CheckKind::Position,
        CheckKind::Kill,
        CheckKind::Guidance,
        CheckKind::IsSubscription,
        CheckKind::VsSubscription,
    ];

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CheckKind::Position => "Position",
            CheckKind::Kill => "Kill",
            CheckKind::Guidance => "Guidance",
            CheckKind::IsSubscription => "IS-sub",
            CheckKind::VsSubscription => "VS-sub",
        }
    }
}

/// One verification family's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRow {
    /// The verification family.
    pub check: CheckKind,
    /// The 1–10 score threshold selected.
    pub threshold: u8,
    /// Honest messages flagged at that threshold.
    pub false_positive_rate: f64,
    /// Cheat messages detected at that threshold.
    pub detection_rate: f64,
    /// Honest samples scored.
    pub honest_samples: usize,
    /// Cheat samples scored.
    pub cheat_samples: usize,
}

/// Picks the smallest threshold whose honest false-positive rate is at
/// most `fp_budget`, then evaluates detection at it.
fn evaluate(check: CheckKind, honest: &[u8], cheats: &[u8], fp_budget: f64) -> DetectionRow {
    let mut threshold = 10u8;
    let mut fp = 1.0;
    for t in 2..=10u8 {
        let flagged = honest.iter().filter(|&&s| s >= t).count();
        let rate = if honest.is_empty() { 0.0 } else { flagged as f64 / honest.len() as f64 };
        if rate <= fp_budget {
            threshold = t;
            fp = rate;
            break;
        }
    }
    let detected = cheats.iter().filter(|&&s| s >= threshold).count();
    DetectionRow {
        check,
        threshold,
        false_positive_rate: fp,
        detection_rate: if cheats.is_empty() { 0.0 } else { detected as f64 / cheats.len() as f64 },
        honest_samples: honest.len(),
        cheat_samples: cheats.len(),
    }
}

/// Runs the full Figure 6 experiment.
///
/// `cheat_fraction` is the fraction of opportunities on which the cheater
/// misbehaves (the paper's "up to 10 %"); `fp_budget` the false-positive
/// cap (the paper's 5 %).
#[must_use]
pub fn run_detection(
    workload: &Workload,
    config: &WatchmenConfig,
    cheat_fraction: f64,
    fp_budget: f64,
    seed: u64,
) -> Vec<DetectionRow> {
    let recorder = Arc::new(FlightRecorder::new(watchmen_telemetry::DEFAULT_CAPACITY));
    run_detection_traced(workload, config, cheat_fraction, fp_budget, seed, &recorder)
}

/// As [`run_detection`], but audits the run through `recorder`: every
/// injected perturbation leaves a ground-truth [`EventKind::Inject`]
/// event and every cheat sample scored leaves an [`EventKind::Verdict`]
/// event, so a detection figure can be traced back to the individual
/// decisions behind it.
#[must_use]
pub fn run_detection_traced(
    workload: &Workload,
    config: &WatchmenConfig,
    cheat_fraction: f64,
    fp_budget: f64,
    seed: u64,
    recorder: &Arc<FlightRecorder>,
) -> Vec<DetectionRow> {
    let verdict = |subject: usize, check: &'static str, score: u8, frame: usize| {
        recorder.record(TraceEvent::point(
            TraceId::NONE,
            0,
            subject as u32,
            frame as u64,
            Phase::Verify,
            EventKind::Verdict,
            check,
            i64::from(score),
        ));
    };
    let physics = PhysicsConfig::default();
    let trace = &workload.trace;
    let map = &workload.map;
    let n = trace.players;
    let dt = config.frame_seconds();
    let mut rng = Xoshiro256::seed_from(seed, 0xde7ec7);
    let mut injector = CheatInjector::new(seed, 1.0);
    // Ground truth: each perturbation the injector produces is recorded,
    // so missed detections can be audited against what was injected. The
    // experiment rotates cheaters, so no single id is attributed.
    injector.attach_recorder(Arc::clone(recorder), watchmen_telemetry::trace::NO_SUBJECT);
    let mut rows = Vec::new();

    // Frames where each player respawned/teleported (skip those pairs).
    let teleports: Vec<Vec<u64>> = {
        let mut t = vec![Vec::new(); n];
        for (f, frame) in trace.frames.iter().enumerate() {
            for e in &frame.events {
                if let GameEvent::Respawn { player, .. } = e {
                    t[player.index()].push(f as u64);
                }
            }
        }
        t
    };
    let teleported = |p: usize, f: usize| teleports[p].contains(&(f as u64));

    // ---------- Position checks ----------
    {
        let verifier = Verifier::new(*config, physics);
        let mut honest = Vec::new();
        let mut cheats = Vec::new();
        for f in 1..trace.len() {
            for p in 0..n {
                let prev = &trace.frames[f - 1].states[p];
                let next = &trace.frames[f].states[p];
                if !prev.is_alive() || !next.is_alive() || teleported(p, f) {
                    continue;
                }
                honest.push(verifier.check_position(prev.position, next.position, 1, map));
                // Inject a speed hack on cheat_fraction of opportunities.
                if rng.next_bool(cheat_fraction) {
                    let max_step = physics.max_step(dt);
                    let hacked = injector.speed_hack(prev.position, next.position, max_step);
                    let score = verifier.check_position(prev.position, hacked, 1, map);
                    verdict(p, checks::POSITION, score, f);
                    cheats.push(score);
                }
            }
        }
        rows.push(evaluate(CheckKind::Position, &honest, &cheats, fp_budget));
    }

    // ---------- Kill checks ----------
    {
        let verifier = Verifier::new(*config, physics);
        let mut honest = Vec::new();
        let mut cheats = Vec::new();
        for (f, frame) in trace.frames.iter().enumerate() {
            for e in &frame.events {
                if let GameEvent::Kill { attacker, victim, weapon, .. } = e {
                    if f == 0 {
                        continue;
                    }
                    let a = &frame.states[attacker.index()];
                    // The verifier's knowledge of the victim predates the
                    // kill (the kill-frame snapshot already shows them
                    // dead).
                    let v = &trace.frames[f - 1].states[victim.index()];
                    let claim = KillClaim {
                        victim: *victim,
                        weapon: *weapon,
                        attacker_position: a.position,
                        victim_position: v.position,
                    };
                    // How long the victim was in the attacker's IS over
                    // the 5 preceding frames.
                    let is_frames = (f.saturating_sub(5)..f)
                        .filter(|&g| {
                            let sets = compute_sets(
                                *attacker,
                                &trace.frames[g].states,
                                map,
                                config,
                                &NoRecency,
                            );
                            sets.interest.contains(victim)
                        })
                        .count() as u64;
                    honest.push(verifier.check_kill(&claim, v, map, is_frames));
                }
            }
            // Fabricated kill claims at the configured rate: the cheater
            // claims kills on random (usually unreachable) victims.
            if rng.next_bool(cheat_fraction * n as f64 / 10.0) {
                let attacker = rng.next_range(n as u64) as usize;
                let victim = rng.next_range(n as u64) as usize;
                if attacker == victim {
                    continue;
                }
                let a = &frame.states[attacker];
                let v = &frame.states[victim];
                if !a.is_alive() || !v.is_alive() {
                    continue;
                }
                // Two fabrication styles: lying about the victim's
                // position (teleporting them into range), or spamming a
                // "truthful" claim the geometry cannot support.
                let lie_about_position = rng.next_bool(0.5);
                let claim = KillClaim {
                    victim: PlayerId(victim as u32),
                    weapon: a.weapon,
                    attacker_position: a.position,
                    victim_position: if lie_about_position {
                        a.position + Vec3::new(10.0, 0.0, 0.0)
                    } else {
                        v.position
                    },
                };
                let score = verifier.check_kill(&claim, v, map, 0);
                verdict(attacker, checks::KILL, score, f);
                cheats.push(score);
            }
        }
        rows.push(evaluate(CheckKind::Kill, &honest, &cheats, fp_budget));
    }

    // ---------- Guidance checks ----------
    {
        let mut verifier = Verifier::new(*config, physics);
        let horizon = config.guidance_period as usize;
        // Proxies compare guidance "against future frequent updates", so
        // the verification window is the first few frames after emission,
        // where honest dead reckoning is still accurate.
        let window = 5usize;
        // Calibrate ā + σ_a on the first third of the trace.
        let calibration_end = trace.len() / 3;
        let mut honest = Vec::new();
        let mut cheats = Vec::new();
        for f in (0..trace.len().saturating_sub(horizon)).step_by(horizon) {
            for p in 0..n {
                let state = &trace.frames[f].states[p];
                if !state.is_alive()
                    || (f..f + horizon)
                        .any(|g| teleported(p, g) || !trace.frames[g].states[p].is_alive())
                {
                    continue;
                }
                let actual: Polyline =
                    (f..=f + window).map(|g| trace.frames[g].states[p].position).collect();
                let g = Guidance::from_state(state, f as u64, horizon as u64, dt);
                if f < calibration_end {
                    verifier.observe_honest_guidance(
                        watchmen_core::dead_reckoning::guidance_deviation(&g, &actual, dt),
                    );
                    continue;
                }
                honest.push(verifier.check_guidance(&g, &actual));
                if rng.next_bool(cheat_fraction * 3.0) {
                    // Bogus guidance: claims a fabricated velocity.
                    let mut bogus = g;
                    bogus.velocity = injector.bogus_velocity(
                        state.velocity + Vec3::new(1.0, 0.5, 0.0),
                        physics.max_speed,
                    );
                    bogus.predicted_position =
                        bogus.position + bogus.velocity * (horizon as f64 * dt);
                    let score = verifier.check_guidance(&bogus, &actual);
                    verdict(p, checks::GUIDANCE, score, f);
                    cheats.push(score);
                }
            }
        }
        rows.push(evaluate(CheckKind::Guidance, &honest, &cheats, fp_budget));
    }

    // ---------- IS / VS subscription checks ----------
    {
        let verifier = Verifier::new(*config, physics);
        let mut honest_is = Vec::new();
        let mut cheat_is = Vec::new();
        let mut honest_vs = Vec::new();
        let mut cheat_vs = Vec::new();
        for f in (0..trace.len()).step_by(5) {
            let states = &trace.frames[f].states;
            for p in 0..n {
                let pid = PlayerId(p as u32);
                if !states[p].is_alive() {
                    continue;
                }
                let sets = compute_sets(pid, states, map, config, &NoRecency);
                for t in &sets.interest {
                    honest_is
                        .push(verifier.check_is_subscription(pid, *t, states, map, &NoRecency));
                    honest_vs.push(verifier.check_vs_subscription(
                        &states[p],
                        states[t.index()].position,
                        map,
                    ));
                }
                for t in &sets.vision {
                    honest_vs.push(verifier.check_vs_subscription(
                        &states[p],
                        states[t.index()].position,
                        map,
                    ));
                }
                // Cheating subscriptions: request detail on players far
                // outside legitimate interest/vision (information
                // harvesting).
                if rng.next_bool(cheat_fraction * 2.0) && !sets.others.is_empty() {
                    // Pick the farthest "others" member: clearly
                    // unjustified.
                    let target = *sets
                        .others
                        .iter()
                        .max_by(|a, b| {
                            let da = states[a.index()].position.distance(states[p].position);
                            let db = states[b.index()].position.distance(states[p].position);
                            da.partial_cmp(&db).expect("finite")
                        })
                        .expect("non-empty");
                    let is_score =
                        verifier.check_is_subscription(pid, target, states, map, &NoRecency);
                    let vs_score = verifier.check_vs_subscription(
                        &states[p],
                        states[target.index()].position,
                        map,
                    );
                    verdict(p, checks::SUBSCRIPTION, is_score.max(vs_score), f);
                    cheat_is.push(is_score);
                    cheat_vs.push(vs_score);
                }
            }
        }
        rows.push(evaluate(CheckKind::IsSubscription, &honest_is, &cheat_is, fp_budget));
        rows.push(evaluate(CheckKind::VsSubscription, &honest_vs, &cheat_vs, fp_budget));
    }

    // Keep figure order.
    rows.sort_by_key(|r| CheckKind::ALL.iter().position(|&c| c == r.check));
    rows
}

/// Renders the Figure 6 series.
#[must_use]
pub fn format_detection(rows: &[DetectionRow]) -> String {
    let header = ["verification", "success", "false positives", "threshold", "honest n", "cheat n"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.check.label().to_owned(),
                pct(r.detection_rate),
                pct(r.false_positive_rate),
                format!("{}/10", r.threshold),
                r.honest_samples.to_string(),
                r.cheat_samples.to_string(),
            ]
        })
        .collect();
    render_table(&header, &body)
}

/// Renders the Figure 6 series plus the audit trail a
/// [`run_detection_traced`] run left behind: ground-truth injections,
/// verdicts recorded, and how many verdicts were suspicious.
#[must_use]
pub fn format_detection_traced(rows: &[DetectionRow], recorder: &FlightRecorder) -> String {
    let events = recorder.snapshot();
    let injections = events.iter().filter(|e| e.kind == EventKind::Inject).count();
    let verdicts = events.iter().filter(|e| e.kind == EventKind::Verdict).count();
    let suspicious = events.iter().filter(|e| e.kind == EventKind::Verdict && e.value > 5).count();
    format!(
        "{}\naudit: {injections} injections ground-truthed, {verdicts} cheat verdicts \
         recorded ({suspicious} suspicious), {} events total ({} overwritten)\n",
        format_detection(rows),
        recorder.total_recorded(),
        recorder.total_recorded().saturating_sub(recorder.len() as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn rows() -> Vec<DetectionRow> {
        let w = standard_workload(16, 11, 600);
        run_detection(&w, &WatchmenConfig::default(), 0.10, 0.05, 21)
    }

    #[test]
    fn all_five_checks_reported_in_order() {
        let rows = rows();
        assert_eq!(rows.len(), 5);
        for (row, kind) in rows.iter().zip(CheckKind::ALL) {
            assert_eq!(row.check, kind);
        }
    }

    #[test]
    fn false_positives_within_budget() {
        for r in rows() {
            assert!(
                r.false_positive_rate <= 0.05 + 1e-9,
                "{}: fp {}",
                r.check.label(),
                r.false_positive_rate
            );
        }
    }

    #[test]
    fn detection_rates_are_high() {
        for r in rows() {
            assert!(r.honest_samples > 20, "{}: too few honest samples", r.check.label());
            assert!(r.cheat_samples > 5, "{}: too few cheat samples", r.check.label());
            assert!(
                r.detection_rate > 0.55,
                "{}: detection {} too low",
                r.check.label(),
                r.detection_rate
            );
        }
    }

    #[test]
    fn position_detection_is_strong() {
        let rows = rows();
        let pos = rows.iter().find(|r| r.check == CheckKind::Position).unwrap();
        assert!(pos.detection_rate > 0.8, "position detection {}", pos.detection_rate);
    }

    #[test]
    fn formatting_mentions_every_check() {
        let s = format_detection(&rows());
        for kind in CheckKind::ALL {
            assert!(s.contains(kind.label()), "missing {}", kind.label());
        }
    }

    #[test]
    fn traced_run_audits_injections_and_verdicts() {
        let w = standard_workload(16, 11, 600);
        let recorder = Arc::new(FlightRecorder::new(1 << 16));
        let rows = run_detection_traced(&w, &WatchmenConfig::default(), 0.10, 0.05, 21, &recorder);
        let events = recorder.snapshot();
        let injections = events.iter().filter(|e| e.kind == EventKind::Inject).count();
        let verdicts = events.iter().filter(|e| e.kind == EventKind::Verdict).count();
        assert!(injections > 0, "no ground-truth injection events");
        // Every position/guidance cheat sample came from one injector
        // call, so verdicts can't outnumber injections plus fabricated
        // kills and subscriptions (which don't use the injector).
        let cheat_total: usize = rows.iter().map(|r| r.cheat_samples).sum();
        // VS and IS cheats are scored pairwise from one opportunity.
        assert!(verdicts <= cheat_total && verdicts > 0, "{verdicts} vs {cheat_total}");
        let report = format_detection_traced(&rows, &recorder);
        assert!(report.contains("audit:"), "{report}");
        assert!(report.contains("injections ground-truthed"), "{report}");
    }
}
