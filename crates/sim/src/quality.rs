//! Detection-quality accounting: the audit stream joined against
//! injected ground truth.
//!
//! The anti-cheat literature evaluates detectors on two axes — how fast
//! a real cheater is caught (time-to-detect) and how often an honest
//! player is wrongly flagged (false positives). The fleet orchestrator
//! injects cheats into a known subset of matches, so both axes are
//! computable exactly: [`evaluate`] walks one match's verdict audit
//! stream ([`watchmen_core::audit::AuditRecord`]) against its
//! [`GroundTruth`] and produces a [`DetectionQuality`] with
//! per-[`watchmen_core::verify::checks`] confusion-matrix counters and
//! per-cheater time-to-detect, which the fleet rolls up into the
//! detection-quality SLO line and `BENCH_detection.json`.
//!
//! Semantics (see DESIGN.md §12):
//!
//! * a **severe verdict** is a [`AuditKind::Verdict`] record with score
//!   ≥ 6 — the same threshold the lobby's reputation layer treats as an
//!   offense;
//! * a severe verdict on an injected cheater is a **true positive** for
//!   its check; on an honest player, a **false positive**;
//! * a cheater whose *expected* check (the check the injected cheat
//!   class should trip — [`GroundTruth::expected_check`]) never produced
//!   a severe verdict is a **false negative** for that check;
//! * **time-to-detect** is the gap in frames from the cheater's first
//!   cheating frame to its first severe verdict from any check
//!   ([`UNDETECTED`] when none ever fires).

use std::collections::BTreeMap;

use watchmen_core::audit::{AuditKind, AuditRecord};

/// Sentinel time-to-detect for a cheater no check ever caught.
pub const UNDETECTED: u64 = u64::MAX;

/// What was actually injected into one match.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Player ids scripted to cheat.
    pub cheaters: Vec<u32>,
    /// The first frame a scripted cheat action occurs on.
    pub first_cheat_frame: u64,
    /// The check the injected cheat class should trip (false negatives
    /// are attributed here), e.g. `checks::POSITION` for a speed hack.
    pub expected_check: &'static str,
    /// Per-cheater overrides of [`Self::expected_check`], for
    /// multi-actor campaigns whose adversaries play different roles — a
    /// colluding proxy trips `collusion` while its client trips `aim`.
    pub expected_overrides: Vec<(u32, &'static str)>,
}

impl GroundTruth {
    /// The check expected to catch `cheater`: its override if one is
    /// recorded, the match-wide [`Self::expected_check`] otherwise.
    #[must_use]
    pub fn expected_for(&self, cheater: u32) -> &'static str {
        self.expected_overrides
            .iter()
            .find(|(c, _)| *c == cheater)
            .map_or(self.expected_check, |(_, check)| check)
    }
}

/// One check's confusion-matrix counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Severe verdicts on injected cheaters.
    pub true_pos: u64,
    /// Severe verdicts on honest players.
    pub false_pos: u64,
    /// Injected cheaters this check should have caught but never did.
    pub false_neg: u64,
}

/// The detection-quality join for one match (mergeable across a fleet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionQuality {
    /// Cheaters injected.
    pub injected: u64,
    /// Cheaters caught by at least one severe verdict.
    pub detected: u64,
    /// Severe verdicts on honest players (any check).
    pub false_verdicts: u64,
    /// Per detected cheater: frames from first cheat to first severe
    /// verdict ([`UNDETECTED`] entries for cheaters never caught).
    pub ttd_frames: Vec<u64>,
    /// Per-check confusion counters, keyed by check name.
    pub per_check: BTreeMap<&'static str, Confusion>,
}

impl DetectionQuality {
    /// Folds another match's counters into this one.
    pub fn merge(&mut self, other: &DetectionQuality) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.false_verdicts += other.false_verdicts;
        self.ttd_frames.extend_from_slice(&other.ttd_frames);
        for (check, c) in &other.per_check {
            let slot = self.per_check.entry(check).or_default();
            slot.true_pos += c.true_pos;
            slot.false_pos += c.false_pos;
            slot.false_neg += c.false_neg;
        }
    }

    /// The `p`-th percentile (nearest-rank, `0.0..=100.0`) of
    /// time-to-detect over *detected* cheaters; `None` when none were.
    #[must_use]
    pub fn ttd_percentile(&self, p: f64) -> Option<u64> {
        let mut detected: Vec<u64> =
            self.ttd_frames.iter().copied().filter(|&t| t != UNDETECTED).collect();
        if detected.is_empty() {
            return None;
        }
        detected.sort_unstable();
        Some(percentile(&detected, p))
    }
}

/// Nearest-rank percentile of a sorted, non-empty slice.
///
/// # Panics
///
/// Panics if `sorted` is empty.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Joins one match's audit stream against its ground truth.
///
/// Records must be in emission order (the order the fleet drains them);
/// only [`AuditKind::Verdict`] records participate, so the stream can
/// carry the full mix of kinds.
#[must_use]
pub fn evaluate(truth: &GroundTruth, records: &[AuditRecord]) -> DetectionQuality {
    let mut quality =
        DetectionQuality { injected: truth.cheaters.len() as u64, ..DetectionQuality::default() };
    // First severe-verdict frame per cheater, any check.
    let mut first_severe: BTreeMap<u32, u64> = BTreeMap::new();
    // Checks that produced a severe verdict per cheater, for the
    // expected-check false-negative accounting.
    let mut caught_by: BTreeMap<(u32, &'static str), ()> = BTreeMap::new();

    for record in records {
        if record.kind != AuditKind::Verdict || record.score < 6 {
            continue;
        }
        let is_cheater = truth.cheaters.contains(&record.subject);
        let slot = quality.per_check.entry(record.check).or_default();
        if is_cheater {
            slot.true_pos += 1;
            let first = first_severe.entry(record.subject).or_insert(record.frame);
            *first = (*first).min(record.frame);
            caught_by.insert((record.subject, record.check), ());
        } else {
            slot.false_pos += 1;
            quality.false_verdicts += 1;
        }
    }

    for &cheater in &truth.cheaters {
        match first_severe.get(&cheater) {
            Some(&frame) => {
                quality.detected += 1;
                quality.ttd_frames.push(frame.saturating_sub(truth.first_cheat_frame));
            }
            None => quality.ttd_frames.push(UNDETECTED),
        }
        let expected = truth.expected_for(cheater);
        if !expected.is_empty() && !caught_by.contains_key(&(cheater, expected)) {
            quality.per_check.entry(expected).or_default().false_neg += 1;
        }
    }
    quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchmen_core::verify::checks;
    use watchmen_telemetry::TraceId;

    fn verdict(frame: u64, subject: u32, check: &'static str, score: u8) -> AuditRecord {
        AuditRecord {
            frame,
            node: 0,
            subject,
            kind: AuditKind::Verdict,
            check,
            score,
            confidence: "c_P",
            trace: TraceId::NONE,
            detail: String::new(),
        }
    }

    fn truth(cheaters: &[u32]) -> GroundTruth {
        GroundTruth {
            cheaters: cheaters.to_vec(),
            first_cheat_frame: 4,
            expected_check: checks::POSITION,
            expected_overrides: Vec::new(),
        }
    }

    #[test]
    fn joins_verdicts_against_truth() {
        let records = vec![
            verdict(4, 2, checks::POSITION, 3),  // sub-severe: ignored
            verdict(8, 2, checks::POSITION, 9),  // TP, detection at 8
            verdict(12, 2, checks::POSITION, 9), // later TP
            verdict(12, 1, checks::AIM, 7),      // FP on honest player 1
        ];
        let q = evaluate(&truth(&[2]), &records);
        assert_eq!(q.injected, 1);
        assert_eq!(q.detected, 1);
        assert_eq!(q.false_verdicts, 1);
        assert_eq!(q.ttd_frames, vec![4]); // 8 − first cheat frame 4
        let pos = q.per_check[checks::POSITION];
        assert_eq!((pos.true_pos, pos.false_pos, pos.false_neg), (2, 0, 0));
        let aim = q.per_check[checks::AIM];
        assert_eq!((aim.true_pos, aim.false_pos, aim.false_neg), (0, 1, 0));
    }

    #[test]
    fn undetected_cheater_is_a_false_negative() {
        let records = vec![verdict(40, 2, checks::EPOCH_SUMMARY, 9)];
        let q = evaluate(&truth(&[2, 5]), &records);
        assert_eq!(q.injected, 2);
        assert_eq!(q.detected, 1);
        assert_eq!(q.ttd_frames, vec![36, UNDETECTED]);
        // Cheater 2 was caught, but not by the expected check; cheater 5
        // not at all — both count against POSITION's recall.
        assert_eq!(q.per_check[checks::POSITION].false_neg, 2);
        assert_eq!(q.per_check[checks::EPOCH_SUMMARY].true_pos, 1);
        assert_eq!(q.ttd_percentile(99.0), Some(36));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = evaluate(&truth(&[2]), &[verdict(8, 2, checks::POSITION, 9)]);
        let b = evaluate(&truth(&[3]), &[verdict(6, 3, checks::POSITION, 8)]);
        a.merge(&b);
        assert_eq!(a.injected, 2);
        assert_eq!(a.detected, 2);
        assert_eq!(a.ttd_frames, vec![4, 2]);
        assert_eq!(a.per_check[checks::POSITION].true_pos, 2);
        assert_eq!(a.ttd_percentile(50.0), Some(2));
        assert_eq!(a.ttd_percentile(99.0), Some(4));
    }

    #[test]
    fn per_cheater_overrides_redirect_false_negatives() {
        // Cheater 2 (the client) is caught by AIM; cheater 5 (its proxy)
        // is expected at COLLUSION and never caught there.
        let mut t = truth(&[2, 5]);
        t.expected_check = checks::AIM;
        t.expected_overrides = vec![(5, checks::COLLUSION)];
        assert_eq!(t.expected_for(2), checks::AIM);
        assert_eq!(t.expected_for(5), checks::COLLUSION);
        let q = evaluate(&t, &[verdict(8, 2, checks::AIM, 9)]);
        assert_eq!(q.detected, 1);
        assert_eq!(q.per_check[checks::AIM].false_neg, 0);
        assert_eq!(q.per_check[checks::COLLUSION].false_neg, 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1, 2, 3, 4, 10];
        assert_eq!(percentile(&v, 50.0), 3);
        assert_eq!(percentile(&v, 99.0), 10);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn empty_stream_counts_all_misses() {
        let q = evaluate(&truth(&[1]), &[]);
        assert_eq!(q.detected, 0);
        assert_eq!(q.false_verdicts, 0);
        assert_eq!(q.ttd_frames, vec![UNDETECTED]);
        assert_eq!(q.ttd_percentile(50.0), None);
        assert_eq!(q.per_check[checks::POSITION].false_neg, 1);
    }
}
