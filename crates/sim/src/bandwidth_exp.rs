//! Scalability: per-player bandwidth versus game size.
//!
//! Section II gives the centralized reference ("average bandwidth
//! requirements in centralized Quake III is 12·n kbps where n is the
//! number of players") and Section VI argues Watchmen's proxy scheme keeps
//! per-player cost bounded and fair. This sweep replays growing player
//! counts under each architecture and reports per-node upload/download.

use watchmen_core::overlay::{
    run_client_server, run_donnybrook, run_hybrid, run_watchmen, OverlayReport,
};
use watchmen_core::WatchmenConfig;
use watchmen_net::latency;

use crate::report::render_table;
use crate::workload::standard_workload;

/// One sweep point.
#[derive(Debug)]
pub struct BandwidthRow {
    /// Player count.
    pub players: usize,
    /// Architecture name.
    pub architecture: &'static str,
    /// Mean per-player upload (kbps).
    pub mean_up_kbps: f64,
    /// Max per-player upload (kbps).
    pub max_up_kbps: f64,
    /// Mean per-player download (kbps).
    pub mean_down_kbps: f64,
    /// Server upload (kbps; 0 for P2P architectures).
    pub server_up_kbps: f64,
    /// The paper's centralized server reference `12·n` kbps.
    pub centralized_reference_kbps: f64,
}

fn row_from(report: &OverlayReport, players: usize) -> BandwidthRow {
    BandwidthRow {
        players,
        architecture: report.architecture,
        mean_up_kbps: report.mean_up_kbps,
        max_up_kbps: report.max_up_kbps,
        mean_down_kbps: report.mean_down_kbps,
        server_up_kbps: report.server_up_kbps,
        centralized_reference_kbps: 12.0 * players as f64,
    }
}

/// Runs the sweep: for each player count, replays `frames` frames under
/// the three architectures over a constant-latency network (bandwidth is
/// latency-independent).
#[must_use]
pub fn run_bandwidth_sweep(
    player_counts: &[usize],
    frames: u64,
    config: &WatchmenConfig,
    seed: u64,
) -> Vec<BandwidthRow> {
    let mut rows = Vec::new();
    for &n in player_counts {
        let w = standard_workload(n, seed ^ n as u64, frames);
        let wm = run_watchmen(&w.trace, &w.map, config, latency::constant(30.0), 0.0, seed);
        let db = run_donnybrook(&w.trace, &w.map, config, latency::constant(30.0), 0.0, seed);
        let cs = run_client_server(&w.trace, &w.map, config, latency::constant(30.0), 0.0, seed);
        let hy = run_hybrid(&w.trace, &w.map, config, latency::constant(30.0), 0.0, seed);
        rows.push(row_from(&wm, n));
        rows.push(row_from(&db, n));
        rows.push(row_from(&cs, n));
        rows.push(row_from(&hy, n));
    }
    rows
}

/// Renders the sweep.
#[must_use]
pub fn format_bandwidth(rows: &[BandwidthRow]) -> String {
    let header = [
        "players",
        "architecture",
        "mean up (kbps)",
        "max up (kbps)",
        "mean down (kbps)",
        "server up (kbps)",
        "central ref 12n",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.players.to_string(),
                r.architecture.to_owned(),
                format!("{:.1}", r.mean_up_kbps),
                format!("{:.1}", r.max_up_kbps),
                format!("{:.1}", r.mean_down_kbps),
                format!("{:.1}", r.server_up_kbps),
                format!("{:.1}", r.centralized_reference_kbps),
            ]
        })
        .collect();
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<BandwidthRow> {
        run_bandwidth_sweep(&[8, 16], 120, &WatchmenConfig::default(), 3)
    }

    #[test]
    fn four_rows_per_count() {
        let rows = sweep();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.mean_up_kbps > 0.0));
    }

    #[test]
    fn hybrid_offloads_players_onto_the_server() {
        let rows = sweep();
        let hy = rows.iter().find(|r| r.architecture == "hybrid" && r.players == 16).unwrap();
        let wm = rows.iter().find(|r| r.architecture == "watchmen" && r.players == 16).unwrap();
        assert!(hy.mean_up_kbps < wm.mean_up_kbps);
        assert!(hy.server_up_kbps > 0.0);
    }

    #[test]
    fn client_server_concentrates_load_on_server() {
        let rows = sweep();
        let cs16 =
            rows.iter().find(|r| r.architecture == "client-server" && r.players == 16).unwrap();
        // The server uploads far more than any client.
        assert!(cs16.server_up_kbps > cs16.mean_up_kbps * 4.0);
        // P2P architectures have no server.
        let wm16 = rows.iter().find(|r| r.architecture == "watchmen" && r.players == 16).unwrap();
        assert_eq!(wm16.server_up_kbps, 0.0);
    }

    #[test]
    fn watchmen_stays_below_full_mesh_frequent_updates() {
        // The multi-resolution scheme must beat the naive P2P baseline
        // where every player streams full state to every other player at
        // 20 Hz (107 bytes per update).
        let rows = sweep();
        for n in [8usize, 16] {
            let wm = rows.iter().find(|r| r.architecture == "watchmen" && r.players == n).unwrap();
            let mesh_kbps = 107.0 * 8.0 * (n as f64 - 1.0) * 20.0 / 1000.0;
            assert!(
                wm.mean_up_kbps < mesh_kbps * 0.8,
                "{n}p: watchmen {} vs mesh {mesh_kbps}",
                wm.mean_up_kbps
            );
        }
    }

    #[test]
    fn formatting_contains_architectures() {
        let s = format_bandwidth(&sweep());
        assert!(s.contains("watchmen"));
        assert!(s.contains("donnybrook"));
        assert!(s.contains("client-server"));
    }
}
