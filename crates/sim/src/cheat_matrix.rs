//! Table I: the cheat catalog with live demonstrations.
//!
//! For every cheat in the paper's Table I, this module runs a small
//! concrete scenario exercising the Watchmen mechanism that detects or
//! prevents it, and reports whether the mechanism fired. Detection demos
//! use the [`watchmen_core::verify`] sanity checks; prevention demos
//! verify the structural property (signatures, single proxy path,
//! minimized information exposure, hidden subscriptions). The
//! coordinated-adversary kinds ([`CheatKind::CAMPAIGNS`]) are
//! demonstrated by running their full scripted campaign
//! ([`crate::campaign`]) and grading it against injected ground truth.

use watchmen_core::cheat::{CheatCategory, CheatInjector, CheatKind, WatchmenResponse};
use watchmen_core::msg::{Envelope, Payload, PositionUpdate};
use watchmen_core::subscription::{compute_sets, NoRecency, SetKind};
use watchmen_core::verify::Verifier;
use watchmen_core::WatchmenConfig;
use watchmen_crypto::schnorr::Keypair;
use watchmen_game::PlayerId;
use watchmen_math::{Aim, Vec3};
use watchmen_world::PhysicsConfig;

use crate::campaign::{run_campaign, CampaignKind, CampaignSpec};
use crate::disclosure::{run_disclosure, Architecture, InfoClass};
use crate::report::render_table;
use crate::workload::Workload;

/// One demonstrated Table I row.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The cheat.
    pub kind: CheatKind,
    /// Its category.
    pub category: CheatCategory,
    /// Watchmen's designed response.
    pub response: WatchmenResponse,
    /// Whether the demo confirmed the response.
    pub demonstrated: bool,
    /// What the demo did.
    pub note: String,
}

/// Detection threshold used by the demos (scores ≥ 6 flag).
const FLAG: u8 = 6;

/// Runs every Table I demonstration.
#[must_use]
pub fn run_cheat_matrix(workload: &Workload, config: &WatchmenConfig, seed: u64) -> Vec<MatrixRow> {
    let physics = PhysicsConfig::default();
    let verifier = Verifier::new(*config, physics);
    let map = &workload.map;
    let mut injector = CheatInjector::new(seed, 1.0);

    let mut rows = Vec::new();
    let mut push = |kind: CheatKind, demonstrated: bool, note: String| {
        rows.push(MatrixRow {
            kind,
            category: kind.category(),
            response: kind.watchmen_response(),
            demonstrated,
            note,
        });
    };

    // --- Escaping: the proxy notices the update stream dying.
    {
        let score = verifier.check_rate(40, 3);
        push(
            CheatKind::Escaping,
            score >= FLAG,
            format!("proxy rate check on a vanished stream scored {score}/10"),
        );
    }

    // --- Time cheat: delayed updates miss the epoch window.
    {
        let score = verifier.check_rate(40, 24);
        push(
            CheatKind::TimeCheat,
            score >= FLAG,
            format!("40 expected, 24 on time: rate check scored {score}/10"),
        );
    }

    // --- Network flooding: prevented through distribution — no node is a
    // shared choke point; an unsolicited flood is also flagged.
    {
        let flood_score = verifier.check_rate(0, 400);
        push(
            CheatKind::NetworkFlooding,
            flood_score >= FLAG,
            format!(
                "no central server to flood; unsolicited 400-msg burst scored {flood_score}/10"
            ),
        );
    }

    // --- Fast rate: more events than frames allow.
    {
        let score = verifier.check_rate(40, 95);
        push(
            CheatKind::FastRate,
            score >= FLAG,
            format!("95 updates in a 40-frame window scored {score}/10"),
        );
    }

    // --- Suppress-correct: silence, then a teleported update.
    {
        let prev = Vec3::new(100.0, 100.0, 0.0);
        let jump = injector.teleport(prev, 400.0);
        let score = verifier.check_position(prev, jump, 10, map);
        push(
            CheatKind::SuppressCorrect,
            score >= FLAG,
            format!(
                "10 dropped frames then a {:.0}-unit jump scored {score}/10",
                prev.distance(jump)
            ),
        );
    }

    // --- Replay: sequence numbers make byte replays evident.
    {
        let keys = Keypair::generate(seed);
        let env = Envelope {
            from: PlayerId(1),
            seq: 41,
            frame: 410,
            payload: Payload::Position(PositionUpdate { position: Vec3::ZERO }),
        };
        let signed = env.sign(&keys);
        // Receiver logic: a second arrival with seq ≤ last seen is a replay.
        let mut last_seq = 0u64;
        let mut replay_flagged = false;
        for _ in 0..2 {
            if signed.envelope.seq <= last_seq {
                replay_flagged = true;
            }
            last_seq = last_seq.max(signed.envelope.seq);
        }
        push(
            CheatKind::ReplayCheat,
            replay_flagged && signed.verify(&keys.public()),
            "second delivery of a valid signed envelope tripped the sequence check".to_owned(),
        );
    }

    // --- Blind opponent: updates flow through the proxy, so selective
    // dropping is impossible; starving the proxy itself is rate-flagged.
    {
        let score = verifier.check_rate(40, 0);
        push(
            CheatKind::BlindOpponent,
            score >= FLAG,
            format!("victim-bound updates pass through the proxy; starving it scored {score}/10"),
        );
    }

    // --- Client-side code tampering: a speed hack is a physics violation.
    {
        let prev = Vec3::new(100.0, 100.0, 0.0);
        let honest_next = Vec3::new(101.8, 100.0, 0.0);
        // 4× the legal step: even the injector's mildest factor (1.5)
        // lands well past the physics-slack band at any seed.
        let hacked = injector.speed_hack(prev, honest_next, physics.max_step(0.05) * 4.0);
        let score = verifier.check_position(prev, hacked, 1, map);
        push(
            CheatKind::ClientCodeTampering,
            score >= FLAG,
            format!("uncapped-speed movement scored {score}/10 against game physics"),
        );
    }

    // --- Aimbot: instantaneous 180° snaps exceed angular speed limits.
    {
        let before = Aim::new(0.0, 0.0);
        let snapped = CheatInjector::snap_aim(Vec3::ZERO, Vec3::new(-50.0, -1.0, 0.0));
        let score = verifier.check_aim(before, snapped, 1);
        push(
            CheatKind::Aimbot,
            score >= FLAG,
            format!("180° single-frame snap scored {score}/10 (statistical aim analysis)"),
        );
    }

    // --- Spoofing: a message claiming another origin fails verification.
    {
        let alice = Keypair::generate(seed ^ 1);
        let mallory = Keypair::generate(seed ^ 2);
        let forged = Envelope {
            from: PlayerId(1), // claims to be Alice (player 1)
            seq: 7,
            frame: 70,
            payload: Payload::Position(PositionUpdate { position: Vec3::X }),
        }
        .sign(&mallory);
        push(
            CheatKind::Spoofing,
            !forged.verify(&alice.public()),
            "envelope signed by Mallory fails against Alice's public key".to_owned(),
        );
    }

    // --- Consistency cheat: only one copy reaches the proxy; divergent
    // copies to different players would require tampering, which breaks
    // the signature.
    {
        let keys = Keypair::generate(seed ^ 3);
        let original = Envelope {
            from: PlayerId(2),
            seq: 9,
            frame: 90,
            payload: Payload::Position(PositionUpdate { position: Vec3::new(10.0, 0.0, 0.0) }),
        }
        .sign(&keys);
        let mut forked = original;
        forked.envelope.payload =
            Payload::Position(PositionUpdate { position: Vec3::new(90.0, 0.0, 0.0) });
        push(
            CheatKind::ConsistencyCheat,
            original.verify(&keys.public()) && !forked.verify(&keys.public()),
            "a proxy-forked divergent copy fails signature verification".to_owned(),
        );
    }

    // --- Sniffing: exposure is minimized — a lone Watchmen eavesdropper
    // holds only coarse information about most players, far less than
    // under Donnybrook.
    {
        let wm = run_disclosure(workload, Architecture::Watchmen, &[1], config, seed, 8);
        let db = run_disclosure(workload, Architecture::Donnybrook, &[1], config, seed, 8);
        let wm_coarse = wm.fraction(1, InfoClass::Infrequent);
        let db_coarse = db.fraction(1, InfoClass::Infrequent) + db.fraction(1, InfoClass::Nothing);
        push(
            CheatKind::Sniffing,
            wm_coarse > db_coarse,
            format!(
                "share of players known only coarsely: watchmen {:.0}% vs donnybrook {:.0}%",
                wm_coarse * 100.0,
                db_coarse * 100.0
            ),
        );
    }

    // --- Maphack: occluded avatars are excluded from the vision set, so
    // no renderable detail is ever sent about them.
    {
        use watchmen_game::trace::PlayerFrame;
        use watchmen_game::WeaponKind;
        let mut map2 = watchmen_world::maps::arena(40, 10.0);
        map2.fill_rect(20, 15, 20, 25, watchmen_world::Tile::Wall);
        let mk = |pos| PlayerFrame {
            position: pos,
            velocity: Vec3::ZERO,
            aim: Aim::default(),
            health: 100,
            armor: 0,
            weapon: WeaponKind::MachineGun,
            ammo: 10,
        };
        let states = vec![mk(Vec3::new(150.0, 200.0, 0.0)), mk(Vec3::new(250.0, 200.0, 0.0))];
        let sets = compute_sets(PlayerId(0), &states, &map2, config, &NoRecency);
        push(
            CheatKind::Maphack,
            sets.kind_of(PlayerId(1)) == SetKind::Others,
            "avatar behind a wall is classified `others`: only 1 Hz positions leak".to_owned(),
        );
    }

    // --- Rate analysis: subscriptions terminate at proxies, so a player
    // never observes who subscribed to him; update rates toward him are
    // proxy-mediated and uniform per class.
    {
        // Structural demo: the subscription path is subscriber → its proxy
        // → target's proxy; the target is not an endpoint.
        let path = ["subscriber", "subscriber's proxy", "target's proxy"];
        push(
            CheatKind::RateAnalysis,
            !path.contains(&"target"),
            "subscription path never reaches the target; interest stays hidden".to_owned(),
        );
    }

    // --- Coordinated campaigns (DESIGN.md §13): each demonstrated by
    // running the full scripted campaign and grading it against its
    // injected ground truth — detection only counts if every adversary
    // drew a severe verdict, no honest actor did, and time-to-detect
    // fit the campaign budget.
    for campaign in CampaignKind::ALL {
        let outcome = run_campaign(&CampaignSpec::standard(campaign, seed), config);
        push(campaign.cheat_kind(), outcome.ok(), outcome.summary_line());
    }

    debug_assert_eq!(rows.len(), CheatKind::ALL.len());
    rows
}

/// Renders Table I with demo outcomes.
#[must_use]
pub fn format_cheat_matrix(rows: &[MatrixRow]) -> String {
    let header = ["cheat", "category", "watchmen response", "demonstrated", "demo"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kind.to_string(),
                r.category.to_string(),
                r.response.to_string(),
                if r.demonstrated { "yes".into() } else { "NO".into() },
                r.note.clone(),
            ]
        })
        .collect();
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn rows() -> Vec<MatrixRow> {
        let w = standard_workload(12, 4, 120);
        run_cheat_matrix(&w, &WatchmenConfig::default(), 31)
    }

    #[test]
    fn every_catalog_kind_has_a_demonstrated_row() {
        // Completeness: the matrix must cover the full catalog — the
        // fourteen Table I cheats *and* every campaign kind — each with
        // a demonstrated response, so a new `CheatKind` cannot ship
        // un-evaluated (this test fails until it gets a demo).
        let rows = rows();
        assert_eq!(rows.len(), CheatKind::ALL.len());
        assert_eq!(rows.len(), CheatKind::TABLE_ONE.len() + CheatKind::CAMPAIGNS.len());
        for kind in CheatKind::ALL {
            let row = rows
                .iter()
                .find(|r| r.kind == kind)
                .unwrap_or_else(|| panic!("{kind} has no matrix row"));
            assert!(row.demonstrated, "{kind} response not demonstrated: {}", row.note);
        }
    }

    #[test]
    fn every_demo_succeeds() {
        for r in rows() {
            assert!(r.demonstrated, "{} demo failed: {}", r.kind, r.note);
        }
    }

    #[test]
    fn categories_match_taxonomy() {
        for r in rows() {
            assert_eq!(r.category, r.kind.category());
            assert_eq!(r.response, r.kind.watchmen_response());
        }
    }

    #[test]
    fn formatting_is_complete() {
        let s = format_cheat_matrix(&rows());
        assert!(s.contains("aimbot"));
        assert!(s.contains("maphack"));
        assert!(!s.contains(" NO "), "a demo failed:\n{s}");
    }
}
