//! Figure 4: information disclosure under collusion.
//!
//! "We measured the joint information obtained by a coalition of colluding
//! cheaters about other players using a 48-player trace … This is a worst
//! case scenario as we assume all colluding players work together and any
//! information available to one cheating player is immediately available
//! to all colluding partners."
//!
//! For each architecture and coalition size, every honest player is
//! classified by the *best* joint information the coalition holds about
//! them: complete (proxy), frequent update + dead reckoning, frequent
//! update only, dead reckoning only, infrequent position update, or
//! nothing.

use watchmen_core::proxy::ProxySchedule;
use watchmen_core::subscription::{compute_sets, NoRecency};
use watchmen_core::WatchmenConfig;
use watchmen_game::PlayerId;
use watchmen_world::potentially_visible_set;

use crate::report::{bar, pct, render_table};
use crate::workload::Workload;

/// The information classes of Figure 4's stacked histograms, most
/// informative first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InfoClass {
    /// Proxy-grade complete information.
    Complete,
    /// Frequent state updates and dead reckoning.
    FreqAndDr,
    /// Frequent state updates only.
    FreqOnly,
    /// Dead reckoning only.
    DrOnly,
    /// Infrequent position updates only.
    Infrequent,
    /// No information at all.
    Nothing,
}

impl InfoClass {
    /// All classes in display order.
    pub const ALL: [InfoClass; 6] = [
        InfoClass::Complete,
        InfoClass::FreqAndDr,
        InfoClass::FreqOnly,
        InfoClass::DrOnly,
        InfoClass::Infrequent,
        InfoClass::Nothing,
    ];

    /// Display label matching the paper's legend.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            InfoClass::Complete => "Complete",
            InfoClass::FreqAndDr => "Freq. up. + Dead reck.",
            InfoClass::FreqOnly => "Freq. up.",
            InfoClass::DrOnly => "Dead reck.",
            InfoClass::Infrequent => "Infreq. up.",
            InfoClass::Nothing => "Nothing",
        }
    }
}

/// The three compared infrastructures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Optimal client/server: "frequent updates for avatars in their PVS
    /// and nothing for the rest" — the minimum-exposure baseline.
    ClientServer,
    /// Donnybrook: frequent updates for the IS, dead reckoning for all
    /// others.
    Donnybrook,
    /// Watchmen (Section III).
    Watchmen,
}

impl Architecture {
    /// All architectures in the paper's figure order.
    pub const ALL: [Architecture; 3] =
        [Architecture::ClientServer, Architecture::Donnybrook, Architecture::Watchmen];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::ClientServer => "client-server",
            Architecture::Donnybrook => "donnybrook",
            Architecture::Watchmen => "watchmen",
        }
    }
}

/// The per-coalition-size class distribution for one architecture.
#[derive(Debug, Clone)]
pub struct DisclosureReport {
    /// Which architecture.
    pub architecture: Architecture,
    /// The coalition sizes evaluated.
    pub coalition_sizes: Vec<usize>,
    /// `fractions[k][class_index]`: fraction of honest players in each
    /// [`InfoClass`] for `coalition_sizes[k]`, averaged over frames.
    pub fractions: Vec<[f64; 6]>,
}

impl DisclosureReport {
    /// The fraction for a class at a coalition size.
    ///
    /// # Panics
    ///
    /// Panics if the coalition size was not evaluated.
    #[must_use]
    pub fn fraction(&self, coalition: usize, class: InfoClass) -> f64 {
        let k = self
            .coalition_sizes
            .iter()
            .position(|&c| c == coalition)
            .expect("coalition size not evaluated");
        let idx = InfoClass::ALL.iter().position(|&c| c == class).expect("class");
        self.fractions[k][idx]
    }
}

/// What one observer knows about one subject under an architecture.
#[derive(Debug, Clone, Copy, Default)]
struct Knowledge {
    complete: bool,
    freq: bool,
    dr: bool,
    infreq: bool,
}

impl Knowledge {
    fn merge(&mut self, other: Knowledge) {
        self.complete |= other.complete;
        self.freq |= other.freq;
        self.dr |= other.dr;
        self.infreq |= other.infreq;
    }

    fn classify(&self) -> InfoClass {
        if self.complete {
            InfoClass::Complete
        } else if self.freq && self.dr {
            InfoClass::FreqAndDr
        } else if self.freq {
            InfoClass::FreqOnly
        } else if self.dr {
            InfoClass::DrOnly
        } else if self.infreq {
            InfoClass::Infrequent
        } else {
            InfoClass::Nothing
        }
    }
}

/// Runs the disclosure measurement for one architecture.
///
/// The coalition of size `c` is players `0..c`; honest players are the
/// rest. `frame_stride` subsamples frames to bound cost (the statistics
/// are stationary).
///
/// # Panics
///
/// Panics if the largest coalition is not smaller than the player count.
#[must_use]
#[allow(clippy::needless_range_loop)] // knowledge rows are parallel per-player arrays
pub fn run_disclosure(
    workload: &Workload,
    architecture: Architecture,
    coalition_sizes: &[usize],
    config: &WatchmenConfig,
    seed: u64,
    frame_stride: usize,
) -> DisclosureReport {
    let n = workload.players();
    let max_coalition = coalition_sizes.iter().copied().max().unwrap_or(0);
    assert!(max_coalition < n, "coalition must leave honest players");
    let schedule = ProxySchedule::new(seed, n, config.proxy_period);
    let stride = frame_stride.max(1);

    let mut totals = vec![[0.0f64; 6]; coalition_sizes.len()];
    let mut frames_counted = 0usize;

    for frame in (0..workload.trace.len()).step_by(stride) {
        let states = &workload.trace.frames[frame].states;
        let positions: Vec<_> = states.iter().map(|s| s.position).collect();

        // Knowledge of each potential cheater (0..max_coalition) about
        // each player.
        let mut knowledge = vec![vec![Knowledge::default(); n]; max_coalition];
        for (i, row) in knowledge.iter_mut().enumerate() {
            match architecture {
                Architecture::ClientServer => {
                    let pvs =
                        potentially_visible_set(&workload.map, &positions, i, config.vision_radius);
                    for j in pvs {
                        row[j].freq = true;
                    }
                }
                Architecture::Donnybrook => {
                    let sets =
                        compute_sets(PlayerId(i as u32), states, &workload.map, config, &NoRecency);
                    for j in 0..n {
                        if j != i {
                            row[j].dr = true; // DR broadcast to everyone
                        }
                    }
                    for t in &sets.interest {
                        row[t.index()].freq = true;
                        row[t.index()].dr = false; // IS members send frequent instead
                    }
                }
                Architecture::Watchmen => {
                    let sets =
                        compute_sets(PlayerId(i as u32), states, &workload.map, config, &NoRecency);
                    for j in 0..n {
                        if j != i {
                            row[j].infreq = true; // implicit position updates
                        }
                    }
                    for t in &sets.interest {
                        row[t.index()].freq = true;
                    }
                    for t in &sets.vision {
                        row[t.index()].dr = true;
                    }
                    // Proxy duty grants complete information.
                    for client in schedule.clients_of(PlayerId(i as u32), frame as u64) {
                        row[client.index()].complete = true;
                    }
                }
            }
        }

        for (k, &c) in coalition_sizes.iter().enumerate() {
            for j in c..n {
                let mut joint = Knowledge::default();
                for row in knowledge.iter().take(c) {
                    joint.merge(row[j]);
                }
                let class = joint.classify();
                let idx = InfoClass::ALL.iter().position(|&x| x == class).expect("class");
                totals[k][idx] += 1.0 / (n - c) as f64;
            }
        }
        frames_counted += 1;
    }

    for row in &mut totals {
        for v in row.iter_mut() {
            *v /= frames_counted.max(1) as f64;
        }
    }

    DisclosureReport { architecture, coalition_sizes: coalition_sizes.to_vec(), fractions: totals }
}

/// Renders the stacked-histogram data as a table (one row per coalition
/// size, one column per info class) plus text bars.
#[must_use]
pub fn format_disclosure(report: &DisclosureReport) -> String {
    let mut header = vec!["coalition"];
    header.extend(InfoClass::ALL.iter().map(InfoClass::label));
    let rows: Vec<Vec<String>> = report
        .coalition_sizes
        .iter()
        .zip(&report.fractions)
        .map(|(&c, f)| {
            let mut row = vec![c.to_string()];
            row.extend(f.iter().map(|&v| format!("{} {}", pct(v), bar(v, 10))));
            row
        })
        .collect();
    format!("[{}]\n{}", report.architecture.name(), render_table(&header, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn small_report(arch: Architecture) -> DisclosureReport {
        let w = standard_workload(12, 5, 80);
        run_disclosure(&w, arch, &[1, 2, 4], &WatchmenConfig::default(), 7, 4)
    }

    fn total(report: &DisclosureReport, k: usize) -> f64 {
        report.fractions[k].iter().sum()
    }

    #[test]
    fn fractions_sum_to_one() {
        for arch in Architecture::ALL {
            let r = small_report(arch);
            for k in 0..r.coalition_sizes.len() {
                let t = total(&r, k);
                assert!((t - 1.0).abs() < 1e-9, "{}: sum {t}", arch.name());
            }
        }
    }

    #[test]
    fn client_server_has_no_dr_or_proxy_info() {
        let r = small_report(Architecture::ClientServer);
        for k in 0..r.coalition_sizes.len() {
            assert_eq!(r.fraction(r.coalition_sizes[k], InfoClass::Complete), 0.0);
            assert_eq!(r.fraction(r.coalition_sizes[k], InfoClass::FreqAndDr), 0.0);
            assert_eq!(r.fraction(r.coalition_sizes[k], InfoClass::DrOnly), 0.0);
            assert_eq!(r.fraction(r.coalition_sizes[k], InfoClass::Infrequent), 0.0);
        }
        // Some players are mutually invisible on q3dm17: Nothing > 0.
        assert!(r.fraction(1, InfoClass::Nothing) > 0.0);
    }

    #[test]
    fn donnybrook_never_below_dead_reckoning() {
        let r = small_report(Architecture::Donnybrook);
        for (k, &c) in r.coalition_sizes.iter().enumerate() {
            assert_eq!(r.fraction(c, InfoClass::Infrequent), 0.0, "k={k}");
            assert_eq!(r.fraction(c, InfoClass::Nothing), 0.0);
            assert_eq!(r.fraction(c, InfoClass::Complete), 0.0);
        }
        // DR-dominant, as in the paper.
        assert!(r.fraction(4, InfoClass::DrOnly) > 0.3);
    }

    #[test]
    fn watchmen_floor_is_infrequent_and_has_proxies() {
        let r = small_report(Architecture::Watchmen);
        for &c in &r.coalition_sizes {
            assert_eq!(r.fraction(c, InfoClass::Nothing), 0.0);
        }
        // Proxy duty exposes complete info about ~c/n of honest players.
        assert!(r.fraction(4, InfoClass::Complete) > 0.0);
        // A meaningful share of honest players is only coarsely known.
        assert!(r.fraction(1, InfoClass::Infrequent) > 0.1);
    }

    #[test]
    fn watchmen_discloses_less_than_donnybrook() {
        // The paper's headline: Watchmen significantly reduces disclosure
        // vs Donnybrook. Compare the share with at-most-infrequent info.
        let wm = small_report(Architecture::Watchmen);
        let db = small_report(Architecture::Donnybrook);
        let coarse_wm = wm.fraction(4, InfoClass::Infrequent);
        let coarse_db = db.fraction(4, InfoClass::Infrequent);
        assert!(coarse_wm > coarse_db + 0.05, "wm {coarse_wm} vs db {coarse_db}");
    }

    #[test]
    fn disclosure_grows_with_coalition() {
        let r = small_report(Architecture::Watchmen);
        let coarse_1 = r.fraction(1, InfoClass::Infrequent);
        let coarse_4 = r.fraction(4, InfoClass::Infrequent);
        assert!(coarse_4 <= coarse_1 + 1e-9, "more cheaters → less privacy");
    }

    #[test]
    fn formatting_contains_labels() {
        let r = small_report(Architecture::Watchmen);
        let s = format_disclosure(&r);
        assert!(s.contains("watchmen"));
        assert!(s.contains("Complete"));
        assert!(s.contains("Infreq"));
    }
}
