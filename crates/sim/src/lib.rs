//! Experiment harness: one module per table/figure of the paper's
//! evaluation (Section VII).
//!
//! Every module exposes a `run…` function returning a typed report and a
//! `format…` function rendering the same rows/series the paper plots:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Figure 1 (presence heatmap) | [`heat`] |
//! | Table I (cheat catalog & responses) | [`cheat_matrix`] |
//! | Figure 4 (information disclosure under collusion) | [`disclosure`] |
//! | Figure 5 (witness availability) | [`witness`] |
//! | Figure 6 (verification success rates) | [`detection`] |
//! | Figure 7 (update-age PDF) | [`age`] |
//! | §VI scalability / bandwidth claims | [`bandwidth_exp`] |
//! | §VI subscriber-retention statistics | [`is_churn`] |
//! | DESIGN.md §13 coordinated-adversary campaigns | [`campaign`] |
//!
//! [`workload`] builds the shared trace inputs (the 48-player
//! q3dm17-like deathmatch standing in for the paper's Quake III traces),
//! and [`quality`] joins the verdict audit stream against injected
//! ground truth into detection-quality metrics (time-to-detect,
//! per-check confusion matrices) for the fleet's SLO gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod age;
pub mod bandwidth_exp;
pub mod campaign;
pub mod cheat_matrix;
pub mod detection;
pub mod disclosure;
pub mod heat;
pub mod is_churn;
pub mod quality;
pub mod report;
pub mod witness;
pub mod workload;
