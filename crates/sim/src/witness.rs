//! Figure 5: witness availability around a cheater.
//!
//! "To evaluate the potential for effectiveness, we measure, for a given
//! cheater, the average number of honest players that: act as proxy for
//! him, have him in their IS, or have him in their VS. … even when a
//! player colludes with 3 other cheaters (out of 48 players), he is
//! assigned an honest proxy in 94% of the cases (1 − 3/47) and 10 players
//! on average witness his actions."

use watchmen_core::proxy::ProxySchedule;
use watchmen_core::subscription::{compute_sets, NoRecency};
use watchmen_core::WatchmenConfig;
use watchmen_game::PlayerId;

use crate::report::render_table;
use crate::workload::Workload;

/// Witness statistics for one coalition size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WitnessRow {
    /// Number of colluding cheaters.
    pub coalition: usize,
    /// Fraction of (cheater, frame) pairs with an honest proxy
    /// (complete-information witness).
    pub honest_proxy_rate: f64,
    /// Average number of honest players holding the cheater in their IS
    /// (frequent-update witnesses).
    pub avg_is_witnesses: f64,
    /// Average number of honest players holding the cheater in their VS
    /// (dead-reckoning witnesses).
    pub avg_vs_witnesses: f64,
}

impl WitnessRow {
    /// Total average witnesses (proxy + IS + VS).
    #[must_use]
    pub fn total_witnesses(&self) -> f64 {
        self.honest_proxy_rate + self.avg_is_witnesses + self.avg_vs_witnesses
    }
}

/// Runs the witness measurement for each coalition size (cheaters are
/// players `0..c`).
///
/// # Panics
///
/// Panics if any coalition size is zero or not smaller than the player
/// count.
#[must_use]
pub fn run_witness(
    workload: &Workload,
    coalition_sizes: &[usize],
    config: &WatchmenConfig,
    seed: u64,
    frame_stride: usize,
) -> Vec<WitnessRow> {
    let n = workload.players();
    let schedule = ProxySchedule::new(seed, n, config.proxy_period);
    let stride = frame_stride.max(1);

    coalition_sizes
        .iter()
        .map(|&c| {
            assert!(c >= 1 && c < n, "coalition {c} out of range");
            let mut proxy_hits = 0u64;
            let mut is_count = 0u64;
            let mut vs_count = 0u64;
            let mut samples = 0u64;

            for frame in (0..workload.trace.len()).step_by(stride) {
                let states = &workload.trace.frames[frame].states;
                // Honest observers' sets (honest players are c..n).
                let honest_sets: Vec<_> = (c..n)
                    .map(|i| {
                        compute_sets(PlayerId(i as u32), states, &workload.map, config, &NoRecency)
                    })
                    .collect();
                for cheater in 0..c {
                    let cheater_id = PlayerId(cheater as u32);
                    samples += 1;
                    let proxy = schedule.proxy_of(cheater_id, frame as u64);
                    if proxy.index() >= c {
                        proxy_hits += 1;
                    }
                    for sets in &honest_sets {
                        if sets.interest.contains(&cheater_id) {
                            is_count += 1;
                        } else if sets.vision.contains(&cheater_id) {
                            vs_count += 1;
                        }
                    }
                }
            }

            let samples = samples.max(1) as f64;
            WitnessRow {
                coalition: c,
                honest_proxy_rate: proxy_hits as f64 / samples,
                avg_is_witnesses: is_count as f64 / samples,
                avg_vs_witnesses: vs_count as f64 / samples,
            }
        })
        .collect()
}

/// Renders the Figure 5 series as a table.
#[must_use]
pub fn format_witness(rows: &[WitnessRow]) -> String {
    let header = ["colluders", "honest-proxy rate", "avg IS witnesses", "avg VS witnesses"];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.coalition.to_string(),
                format!("{:.3}", r.honest_proxy_rate),
                format!("{:.2}", r.avg_is_witnesses),
                format!("{:.2}", r.avg_vs_witnesses),
            ]
        })
        .collect();
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn rows() -> Vec<WitnessRow> {
        // 800 frames = 20 proxy epochs: enough independent draws for the
        // analytic honest-proxy rate to stabilize.
        let w = standard_workload(16, 3, 800);
        run_witness(&w, &[1, 2, 4, 8], &WatchmenConfig::default(), 9, 8)
    }

    #[test]
    fn honest_proxy_rate_matches_analytic() {
        // With c cheaters out of n, an honest proxy is drawn with
        // probability (n - c) / (n - 1).
        let rows = rows();
        let n = 16.0;
        for r in &rows {
            let expected = (n - r.coalition as f64) / (n - 1.0);
            assert!(
                (r.honest_proxy_rate - expected).abs() < 0.15,
                "c={} rate {} expected {expected}",
                r.coalition,
                r.honest_proxy_rate
            );
        }
    }

    #[test]
    fn witnesses_shrink_with_coalition() {
        let rows = rows();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(last.honest_proxy_rate < first.honest_proxy_rate);
        // Fewer honest observers → fewer witnesses on average.
        assert!(last.total_witnesses() <= first.total_witnesses() + 1.0);
    }

    #[test]
    fn there_are_witnesses_at_all() {
        let rows = rows();
        let r = &rows[0];
        assert!(r.avg_is_witnesses + r.avg_vs_witnesses > 0.5, "expected some witnesses: {r:?}");
    }

    #[test]
    fn formatting_lists_all_rows() {
        let s = format_witness(&rows());
        assert_eq!(s.lines().count(), 2 + 4);
        assert!(s.contains("honest-proxy"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_coalition_panics() {
        let w = standard_workload(4, 1, 10);
        let _ = run_witness(&w, &[4], &WatchmenConfig::default(), 1, 1);
    }
}
