//! Coordinated-adversary campaigns: collusion, Sybil flood and eclipse
//! (DESIGN.md §13).
//!
//! The single-cheater experiments ([`crate::detection`],
//! [`crate::cheat_matrix`]) assume adversaries act alone. This module
//! scripts *campaigns* — multiple actors coordinating against the
//! architecture — and grades the corresponding defences with the same
//! ground-truth join used everywhere else ([`crate::quality`]):
//!
//! * **Proxy–player collusion** ([`CampaignKind::Collusion`]): a client
//!   cheats (aim snaps) while its most-frequent proxy launders the
//!   evidence with clean epoch summaries. Witness redundancy plus
//!   [`watchmen_core::collusion::SummaryCorroborator`] flags the proxy
//!   once its clean reports repeatedly contradict independent severe
//!   witness verdicts.
//! * **Sybil flood** ([`CampaignKind::SybilFlood`]): a burst of fresh
//!   identities hammers [`watchmen_core::lobby::GameLobby::admit_midgame`].
//!   The sliding admission window throttles the flood; every over-rate
//!   attempt draws a severe `admission` verdict against the candidate
//!   key's [`watchmen_core::lobby::key_tag`].
//! * **Eclipse** ([`CampaignKind::Eclipse`]): a clique isolates a victim
//!   by suppressing its scheduled proxies until the deterministic
//!   fallback succession lands on a clique member — or by forging
//!   assignments outright.
//!   [`watchmen_core::schedule_guard::ScheduleBiasDetector`] catches the
//!   forgeries instantly and the forced-fallback concentration
//!   statistically.
//!
//! Each campaign returns a [`CampaignOutcome`] carrying the injected
//! [`GroundTruth`], the emitted audit stream and the joined
//! [`DetectionQuality`]; [`CampaignOutcome::summary_line`] renders the
//! machine-parseable per-campaign SLO line the fleet and CI gate on.

use watchmen_core::audit::{AuditKind, AuditRecord, LOBBY_NODE};
use watchmen_core::cheat::{CheatInjector, CheatKind};
use watchmen_core::collusion::SummaryCorroborator;
use watchmen_core::lobby::{key_tag, AdmitError, GameLobby};
use watchmen_core::proxy::ProxySchedule;
use watchmen_core::schedule_guard::ScheduleBiasDetector;
use watchmen_core::verify::{checks, Verifier};
use watchmen_core::WatchmenConfig;
use watchmen_crypto::schnorr::Keypair;
use watchmen_game::PlayerId;
use watchmen_math::{Aim, Vec3};
use watchmen_telemetry::TraceId;
use watchmen_world::PhysicsConfig;

use crate::quality::{evaluate, DetectionQuality, GroundTruth};

/// The three scripted campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// A cheating client shielded by a colluding proxy's clean summaries.
    Collusion,
    /// A burst of fresh identities flooding mid-game admission.
    SybilFlood,
    /// A clique biasing the proxy schedule to isolate a victim.
    Eclipse,
}

impl CampaignKind {
    /// Every campaign, in catalog order.
    pub const ALL: [CampaignKind; 3] =
        [CampaignKind::Collusion, CampaignKind::SybilFlood, CampaignKind::Eclipse];

    /// Stable knob/summary-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CampaignKind::Collusion => "collusion",
            CampaignKind::SybilFlood => "sybil-flood",
            CampaignKind::Eclipse => "eclipse",
        }
    }

    /// The catalog entry this campaign demonstrates.
    #[must_use]
    pub fn cheat_kind(self) -> CheatKind {
        match self {
            CampaignKind::Collusion => CheatKind::ProxyCollusion,
            CampaignKind::SybilFlood => CheatKind::SybilFlood,
            CampaignKind::Eclipse => CheatKind::Eclipse,
        }
    }

    /// The check expected to flag this campaign's *coordinating* actors
    /// (the colluding proxy, the Sybil identities, the eclipse clique).
    #[must_use]
    pub fn expected_check(self) -> &'static str {
        match self {
            CampaignKind::Collusion => checks::COLLUSION,
            CampaignKind::SybilFlood => checks::ADMISSION,
            CampaignKind::Eclipse => checks::SCHEDULE,
        }
    }

    /// Frames allowed from the first campaign action to the p99
    /// detection. Campaign detectors work at epoch granularity (they
    /// accumulate cross-epoch evidence), so the budgets are multiples of
    /// the 40-frame proxy period — unlike the fleet's 32-frame budget
    /// for single-cheater physics violations.
    #[must_use]
    pub fn ttd_budget_frames(self) -> u64 {
        match self {
            // The colluder must launder twice, and only launders in the
            // epochs it is the client's proxy: worst case nearly the
            // whole 30-epoch campaign.
            CampaignKind::Collusion => 1200,
            // Over-rate attempts are refused (and flagged) the frame
            // they arrive; one window is generous.
            CampaignKind::SybilFlood => 40,
            // The bias window tolerates two fallbacks before flagging,
            // and stragglers are caught by their forged claims.
            CampaignKind::Eclipse => 800,
        }
    }

    /// Parses a knob value (`collusion`, `sybil-flood`, `eclipse`).
    #[must_use]
    pub fn parse(name: &str) -> Option<CampaignKind> {
        CampaignKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for CampaignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One campaign's parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignSpec {
    /// Which campaign to run.
    pub kind: CampaignKind,
    /// Deterministic seed (schedule, keys, injected actions).
    pub seed: u64,
    /// Roster size the campaign plays against.
    pub players: usize,
    /// Campaign length, in proxy epochs.
    pub epochs: u64,
}

impl CampaignSpec {
    /// The standard scenario for `kind` at `seed` — what the e2e tests,
    /// the CI gate and the fleet soak all run.
    #[must_use]
    pub fn standard(kind: CampaignKind, seed: u64) -> Self {
        CampaignSpec { kind, seed, players: 12, epochs: 30 }.validated()
    }

    fn validated(self) -> Self {
        assert!(self.players >= 6, "campaigns need a populated roster");
        assert!(self.epochs >= 8, "campaigns need room for cross-epoch evidence");
        self
    }
}

/// The graded result of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Which campaign ran.
    pub kind: CampaignKind,
    /// The seed it ran at.
    pub seed: u64,
    /// What was injected (adversary ids / key tags, first action frame,
    /// per-actor expected checks).
    pub truth: GroundTruth,
    /// The joined detection-quality counters.
    pub quality: DetectionQuality,
    /// The full audit stream the campaign emitted, in emission order.
    pub audit: Vec<AuditRecord>,
}

impl CampaignOutcome {
    /// Whether the campaign met its SLO: every scripted adversary drew a
    /// severe verdict, no honest actor did, and the p99 time-to-detect
    /// fits the campaign's budget.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.quality.detected == self.quality.injected
            && self.quality.false_verdicts == 0
            && self.quality.ttd_percentile(99.0).is_some_and(|p| p <= self.kind.ttd_budget_frames())
    }

    /// The machine-parseable per-campaign SLO line:
    ///
    /// ```text
    /// campaign collusion: adversaries=2 detected=2 false_verdicts=0 ttd_p99=1120 budget=1200 ok=true
    /// ```
    #[must_use]
    pub fn summary_line(&self) -> String {
        let p99 =
            self.quality.ttd_percentile(99.0).map_or_else(|| "none".to_owned(), |p| p.to_string());
        format!(
            "campaign {}: adversaries={} detected={} false_verdicts={} ttd_p99={} budget={} ok={}",
            self.kind.name(),
            self.quality.injected,
            self.quality.detected,
            self.quality.false_verdicts,
            p99,
            self.kind.ttd_budget_frames(),
            self.ok(),
        )
    }
}

/// Runs one campaign under `config`, deterministically in
/// `spec.seed`.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec, config: &WatchmenConfig) -> CampaignOutcome {
    let spec = spec.validated();
    let (truth, audit) = match spec.kind {
        CampaignKind::Collusion => run_collusion(&spec, config),
        CampaignKind::SybilFlood => run_sybil_flood(&spec, config),
        CampaignKind::Eclipse => run_eclipse(&spec, config),
    };
    let quality = evaluate(&truth, &audit);
    CampaignOutcome { kind: spec.kind, seed: spec.seed, truth, quality, audit }
}

fn verdict(
    frame: u64,
    node: u32,
    subject: u32,
    check: &'static str,
    score: u8,
    detail: String,
) -> AuditRecord {
    AuditRecord {
        frame,
        node,
        subject,
        kind: AuditKind::Verdict,
        check,
        score,
        confidence: "campaign",
        trace: TraceId::NONE,
        detail,
    }
}

/// Proxy–player collusion: client `C` aim-snaps every epoch; its
/// most-frequent proxy `P` (the realistic collusion partner — the proxy
/// with the most laundering opportunities) reports clean summaries
/// whenever it serves, while honest proxies report what they see.
/// Witnesses in `C`'s interest set verify independently throughout.
fn run_collusion(spec: &CampaignSpec, config: &WatchmenConfig) -> (GroundTruth, Vec<AuditRecord>) {
    let period = config.proxy_period;
    let schedule = ProxySchedule::new(spec.seed, spec.players, period);
    let verifier = Verifier::new(*config, PhysicsConfig::default());
    let mut injector = CheatInjector::new(spec.seed, 1.0);
    let mut corroborator = SummaryCorroborator::default();
    let mut audit = Vec::new();

    let client = PlayerId(3);
    // The colluder: whichever proxy the schedule hands the client most
    // often over the campaign (pigeonhole: ≥ ⌈epochs / (players−1)⌉ ≥ 3
    // epochs at the standard 30/12, comfortably past the corroborator's
    // two-contradiction threshold).
    let mut counts = vec![0u32; spec.players];
    for epoch in 0..spec.epochs {
        counts[schedule.proxy_of(client, epoch * period).index()] += 1;
    }
    let colluder = PlayerId(
        (0..spec.players as u32).max_by_key(|&p| counts[p as usize]).expect("players >= 6"),
    );
    // Three honest witnesses from the client's interest set.
    let witnesses: Vec<PlayerId> = (0..spec.players as u32)
        .map(PlayerId)
        .filter(|&p| p != client && p != colluder)
        .take(3)
        .collect();
    let honest_control = *witnesses.first().expect("three witnesses");

    for epoch in 0..spec.epochs {
        let frame = epoch * period;
        // The client snaps its aim onto a fresh target each epoch — a
        // genuine physics violation each witness scores independently.
        let target = Vec3::new(-40.0 - injector.teleport(Vec3::ZERO, 5.0).x, -2.0, 0.0);
        let snapped = CheatInjector::snap_aim(Vec3::ZERO, target);
        for &w in &witnesses {
            let score = verifier.check_aim(Aim::new(0.0, 0.0), snapped, 1);
            audit.push(verdict(
                frame,
                w.0,
                client.0,
                checks::AIM,
                score,
                format!("witness {w} scored the epoch-{epoch} snap"),
            ));
            corroborator.observe_witness(epoch, w.0, client.0, score);
            // The same witnesses watch an honest player turn slowly:
            // sub-severe, contributes nothing to anyone's tally.
            let honest_score = verifier.check_aim(Aim::new(0.0, 0.0), Aim::new(0.02, 0.0), 1);
            debug_assert!(honest_score < 6);
            corroborator.observe_witness(epoch, w.0, honest_control.0, honest_score);
        }

        // Epoch summary from whoever proxies the client this epoch.
        let proxy = schedule.proxy_of(client, frame);
        let summary_score: u8 = if proxy == colluder { 1 } else { 8 };
        if proxy != colluder {
            audit.push(verdict(
                frame,
                proxy.0,
                client.0,
                checks::EPOCH_SUMMARY,
                summary_score,
                format!("honest proxy {proxy} summarized epoch {epoch}"),
            ));
        }
        if let Some(v) = corroborator.observe_summary(epoch, proxy.0, client.0, summary_score) {
            audit.push(verdict(
                frame,
                LOBBY_NODE,
                v.proxy,
                checks::COLLUSION,
                v.score,
                format!(
                    "clean summary contradicted by {} witnesses; contradiction {}",
                    v.witnesses, v.contradictions
                ),
            ));
        }
    }

    let truth = GroundTruth {
        cheaters: vec![client.0, colluder.0],
        first_cheat_frame: 0,
        expected_check: checks::AIM,
        expected_overrides: vec![(colluder.0, checks::COLLUSION)],
    };
    (truth, audit)
}

/// Sybil flood: one honest mid-game join, then a burst of fresh
/// identities repeatedly hammering admission inside one window, then an
/// honest joiner after the flood subsides. Identities admitted within
/// the allowance are indistinguishable from honest joins (and are not
/// ground-truth adversaries); every over-rate attempt is.
fn run_sybil_flood(
    spec: &CampaignSpec,
    config: &WatchmenConfig,
) -> (GroundTruth, Vec<AuditRecord>) {
    let window = config.admission_window_frames;
    let allowance = config.max_joins_per_window as usize;
    let mut lobby =
        GameLobby::new(spec.seed, *config, 60).with_keys(Keypair::generate(spec.seed ^ 0xbee));
    for i in 0..spec.players {
        lobby.register(Keypair::generate(spec.seed * 100 + i as u64).public());
    }
    lobby.start();

    // An honest joiner well before the flood: admitted, no audit.
    let honest_early = Keypair::generate(spec.seed ^ 0x40e5).public();
    lobby.admit_midgame(honest_early, 10).expect("quiet lobby admits");

    // The flood: `allowance + 8` fresh identities burst at one frame and
    // keep retrying inside the window. The first `allowance` slip in
    // (the admission throttle bounds *rate*, not *intent* — a known
    // gap); every attempt after that is refused and flagged.
    let flood_frame = 10 + window + 10;
    let sybils: Vec<_> = (0..allowance + 8)
        .map(|i| Keypair::generate(spec.seed * 1_000 + 7_000 + i as u64).public())
        .collect();
    let mut refused = Vec::new();
    for retry_frame in (flood_frame..flood_frame + window).step_by(window as usize / 4) {
        for key in &sybils {
            if refused.contains(&key_tag(key)) || lobby.snapshot_roster().len() >= config.max_roster
            {
                continue;
            }
            match lobby.admit_midgame(*key, retry_frame) {
                Ok(_) => {}
                Err(AdmitError::Throttled { .. }) => {
                    if !refused.contains(&key_tag(key)) {
                        refused.push(key_tag(key));
                    }
                }
                Err(AdmitError::RosterFull { .. } | AdmitError::Banned { .. }) => {}
            }
        }
    }
    // Identities already refused keep retrying — sustained pressure the
    // escalation logic answers with rising scores.
    for key in sybils.iter().filter(|k| refused.contains(&key_tag(k))) {
        let _ = lobby.admit_midgame(*key, flood_frame + window / 2);
    }

    // After the flood's window slides out, a patient honest joiner gets
    // in cleanly — the throttle denies bursts, not the service.
    let honest_late = Keypair::generate(spec.seed ^ 0x1a7e).public();
    lobby
        .admit_midgame(honest_late, flood_frame + 2 * window)
        .expect("admission recovers after the flood");

    let audit = lobby.drain_audit();
    let truth = GroundTruth {
        cheaters: refused,
        first_cheat_frame: flood_frame,
        expected_check: checks::ADMISSION,
        expected_overrides: Vec::new(),
    };
    (truth, audit)
}

/// Eclipse: a clique isolates the victim by suppressing its scheduled
/// proxies each epoch until the deterministic fallback succession lands
/// on a clique member; in epochs where the succession never reaches the
/// clique, a member forges the assignment outright. An honest control
/// victim with one genuine crash-fallback exercises the false-positive
/// side.
fn run_eclipse(spec: &CampaignSpec, config: &WatchmenConfig) -> (GroundTruth, Vec<AuditRecord>) {
    let period = config.proxy_period;
    let depth = config.proxy_fallback_depth as usize;
    let schedule = ProxySchedule::new(spec.seed, spec.players, period);
    let mut detector = ScheduleBiasDetector::default();
    let mut audit = Vec::new();

    let victim = PlayerId(0);
    let control = PlayerId(1);
    let clique: Vec<PlayerId> =
        [spec.players as u32 - 2, spec.players as u32 - 1].map(PlayerId).to_vec();
    let mut forge_turn = 0usize;

    for epoch in 0..spec.epochs {
        let frame = epoch * period;
        let scheduled = schedule.proxy_of(victim, frame);
        // The clique crash-frames the victim's honest proxies until the
        // succession reaches one of its own (within the fallback depth
        // every honest node tolerates).
        let landing = (0..=depth)
            .map(|n| schedule.nth_proxy_of(victim, frame, n))
            .find(|p| clique.contains(p));
        let effective = match landing {
            Some(member) => member,
            None => {
                // The succession never reaches the clique this epoch: a
                // member forges the claim instead. Any honest node
                // recomputing the schedule proves the forgery on sight.
                let forger = clique[forge_turn % clique.len()];
                forge_turn += 1;
                let score = ScheduleBiasDetector::verify_claim(
                    &schedule,
                    victim,
                    frame,
                    forger,
                    config.proxy_fallback_depth,
                )
                .expect("outside the plausible set by construction");
                audit.push(verdict(
                    frame,
                    victim.0,
                    forger.0,
                    checks::SCHEDULE,
                    score,
                    format!("claimed proxyship of {victim} outside the epoch-{epoch} schedule"),
                ));
                scheduled // the forgery is rejected; the honest proxy serves
            }
        };
        for v in detector.observe_epoch(epoch, victim, scheduled, effective) {
            audit.push(verdict(
                frame,
                victim.0,
                v.suspect,
                checks::SCHEDULE,
                v.score,
                format!("{} fallback overrides in the window favoured {}", v.fallbacks, v.suspect),
            ));
        }

        // The control victim sees one honest crash mid-campaign; its
        // fallback beneficiary must never be flagged.
        let control_scheduled = schedule.proxy_of(control, frame);
        let control_effective = if epoch == spec.epochs / 2 {
            schedule.nth_proxy_of(control, frame, 1)
        } else {
            control_scheduled
        };
        for v in detector.observe_epoch(epoch, control, control_scheduled, control_effective) {
            audit.push(verdict(
                frame,
                control.0,
                v.suspect,
                checks::SCHEDULE,
                v.score,
                "honest-churn fallback flagged (false positive)".to_owned(),
            ));
        }
    }

    let truth = GroundTruth {
        cheaters: clique.iter().map(|p| p.0).collect(),
        first_cheat_frame: 0,
        expected_check: checks::SCHEDULE,
        expected_overrides: Vec::new(),
    };
    (truth, audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(kind: CampaignKind, seed: u64) -> CampaignOutcome {
        run_campaign(&CampaignSpec::standard(kind, seed), &WatchmenConfig::default())
    }

    #[test]
    fn collusion_flags_both_client_and_proxy() {
        let o = outcome(CampaignKind::Collusion, 11);
        assert_eq!(o.quality.injected, 2);
        assert_eq!(o.quality.detected, 2, "{}", o.summary_line());
        assert_eq!(o.quality.false_verdicts, 0);
        assert!(o.quality.per_check[checks::COLLUSION].true_pos >= 1);
        assert!(o.quality.per_check[checks::AIM].true_pos >= 1);
        assert!(o.ok(), "{}", o.summary_line());
    }

    #[test]
    fn sybil_flood_flags_every_over_rate_identity() {
        let o = outcome(CampaignKind::SybilFlood, 11);
        assert!(o.quality.injected >= 8, "{}", o.summary_line());
        assert_eq!(o.quality.detected, o.quality.injected);
        assert_eq!(o.quality.false_verdicts, 0);
        // Refusals are instant: everything detected inside one window.
        assert!(o.quality.ttd_percentile(99.0).expect("detected") <= 40);
        assert!(o.ok(), "{}", o.summary_line());
    }

    #[test]
    fn eclipse_flags_the_whole_clique_without_framing_honest_churn() {
        let o = outcome(CampaignKind::Eclipse, 11);
        assert_eq!(o.quality.injected, 2);
        assert_eq!(o.quality.detected, 2, "{}", o.summary_line());
        assert_eq!(o.quality.false_verdicts, 0, "honest crash-fallback was framed");
        assert!(o.ok(), "{}", o.summary_line());
    }

    #[test]
    fn campaigns_hold_across_seeds() {
        for seed in 0..6u64 {
            for kind in CampaignKind::ALL {
                let o = outcome(kind, seed);
                assert!(o.ok(), "seed {seed}: {}", o.summary_line());
            }
        }
    }

    #[test]
    fn summary_line_is_machine_parseable() {
        let o = outcome(CampaignKind::Collusion, 7);
        let line = o.summary_line();
        assert!(line.starts_with("campaign collusion: "), "{line}");
        for field in ["adversaries=", "detected=", "false_verdicts=", "ttd_p99=", "budget=", "ok="]
        {
            assert!(line.contains(field), "{line} missing {field}");
        }
    }

    #[test]
    fn kinds_map_to_catalog_and_knobs() {
        for kind in CampaignKind::ALL {
            assert_eq!(CampaignKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.cheat_kind().category().to_string(), "coordinated adversary");
            assert!(kind.ttd_budget_frames() > 0);
        }
        assert_eq!(CampaignKind::parse("nope"), None);
    }
}
