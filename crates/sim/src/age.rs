//! Figure 7: distribution of the age of received updates.
//!
//! "We simulated latency in our networking module using latencies
//! available from the King and PeerWise datasets … Message loss is
//! simulated with a rate of 1%. … Quake tolerates up to 150 ms latency,
//! therefore, only the messages that are 3 frames old or more … are
//! counted as loss."

use watchmen_core::overlay::{run_watchmen, OverlayReport};
use watchmen_core::WatchmenConfig;
use watchmen_net::latency;

use crate::report::{bar, pct, render_table};
use crate::workload::Workload;

/// The latency environments of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencySet {
    /// King-dataset-like (mean 62 ms).
    King,
    /// PeerWise-dataset-like (mean 68 ms).
    PeerWise,
    /// LAN (1–3 ms), matching the paper's LAN experiments.
    Lan,
    /// Two continents with a ~70 ms one-way cross penalty: quantifies why
    /// "games limit the geographic location of players to the same
    /// country or continent".
    Intercontinental,
}

impl LatencySet {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LatencySet::King => "King Latency Set",
            LatencySet::PeerWise => "PW Latency Set",
            LatencySet::Lan => "LAN",
            LatencySet::Intercontinental => "Intercontinental",
        }
    }

    fn model(&self, n: usize, seed: u64) -> Box<dyn latency::LatencyModel> {
        match self {
            LatencySet::King => latency::king_like(n, seed),
            LatencySet::PeerWise => latency::peerwise_like(n, seed),
            LatencySet::Lan => latency::lan(seed),
            LatencySet::Intercontinental => latency::two_zone(n, n / 2, 70.0, seed),
        }
    }
}

/// One latency set's age distribution.
#[derive(Debug)]
pub struct AgeSeries {
    /// Which latency environment.
    pub set: LatencySet,
    /// The full overlay report (ages histogram, bandwidth, drops).
    pub report: OverlayReport,
}

impl AgeSeries {
    /// `(age_in_frames, probability)` pairs — the PDF the paper plots.
    #[must_use]
    pub fn pdf(&self) -> Vec<(u64, f64)> {
        (0..self.report.ages.buckets()).map(|i| (i as u64, self.report.ages.fraction(i))).collect()
    }

    /// The fraction counted as loss (age ≥ 3 frames, plus network drops).
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        self.report.late_or_lost
    }
}

/// Runs the Watchmen overlay under each latency set with 1 % loss.
#[must_use]
pub fn run_age(
    workload: &Workload,
    config: &WatchmenConfig,
    sets: &[LatencySet],
    loss_rate: f64,
    seed: u64,
) -> Vec<AgeSeries> {
    sets.iter()
        .map(|&set| {
            let model = set.model(workload.players(), seed);
            let report =
                run_watchmen(&workload.trace, &workload.map, config, model, loss_rate, seed);
            AgeSeries { set, report }
        })
        .collect()
}

/// Renders the Figure 7 PDF series.
#[must_use]
pub fn format_age(series: &[AgeSeries]) -> String {
    let mut out = Vec::new();
    for s in series {
        let rows: Vec<Vec<String>> = s
            .pdf()
            .into_iter()
            .take(6)
            .map(|(age, p)| vec![age.to_string(), pct(p), bar(p, 30)])
            .collect();
        out.push(format!(
            "[{}]  delivered={}  late-or-lost={}\n{}",
            s.set.name(),
            s.report.updates_delivered,
            pct(s.loss_fraction()),
            render_table(&["age (frames)", "PDF", ""], &rows)
        ));
    }
    out.join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_workload;

    fn series() -> Vec<AgeSeries> {
        let w = standard_workload(12, 5, 300);
        run_age(&w, &WatchmenConfig::default(), &[LatencySet::King, LatencySet::PeerWise], 0.01, 13)
    }

    #[test]
    fn both_sets_deliver_most_updates_fresh() {
        for s in series() {
            // The paper's requirement: FPS playable when messages within
            // 150 ms (3 frames) with loss under ~5%.
            let young = s.report.fraction_younger_than(3);
            assert!(young > 0.85, "{}: young fraction {young}", s.set.name());
            assert!(s.loss_fraction() < 0.15, "{}: loss {}", s.set.name(), s.loss_fraction());
        }
    }

    #[test]
    fn pdf_sums_to_one_minus_overflow() {
        for s in series() {
            let total: f64 = s.pdf().iter().map(|(_, p)| p).sum();
            assert!(total > 0.95 && total <= 1.0 + 1e-9, "{total}");
        }
    }

    #[test]
    fn mass_concentrates_in_low_ages() {
        for s in series() {
            let pdf = s.pdf();
            let early: f64 = pdf[..3].iter().map(|(_, p)| p).sum();
            let late: f64 = pdf[3..].iter().map(|(_, p)| p).sum();
            assert!(early > late, "{}: early {early} late {late}", s.set.name());
        }
    }

    #[test]
    fn lan_is_faster_than_wan() {
        let w = standard_workload(8, 5, 200);
        let series =
            run_age(&w, &WatchmenConfig::default(), &[LatencySet::Lan, LatencySet::King], 0.0, 17);
        let lan_young = series[0].report.fraction_younger_than(1);
        let king_young = series[1].report.fraction_younger_than(1);
        assert!(lan_young > king_young, "lan {lan_young} vs king {king_young}");
    }

    #[test]
    fn intercontinental_play_violates_the_budget() {
        // The paper's geographic-restriction rationale: once half the
        // players sit an ocean away, the ≥3-frame tail blows past the
        // tolerable loss budget.
        let w = standard_workload(12, 5, 300);
        let series = run_age(
            &w,
            &WatchmenConfig::default(),
            &[LatencySet::King, LatencySet::Intercontinental],
            0.01,
            23,
        );
        let continental = series[0].loss_fraction();
        let intercontinental = series[1].loss_fraction();
        assert!(
            intercontinental > continental * 2.0,
            "cross-ocean {intercontinental} vs continental {continental}"
        );
        assert!(intercontinental > 0.2, "expected heavy lateness: {intercontinental}");
    }

    #[test]
    fn formatting_contains_set_names() {
        let s = format_age(&series());
        assert!(s.contains("King Latency Set"));
        assert!(s.contains("PW Latency Set"));
    }
}
