//! Plain-text table rendering shared by the experiment binaries.

/// Renders a table with a header row, aligning columns to the widest cell.
///
/// # Examples
///
/// ```
/// let t = watchmen_sim::report::render_table(
///     &["arch", "kbps"],
///     &[vec!["watchmen".into(), "42.0".into()]],
/// );
/// assert!(t.contains("watchmen"));
/// ```
///
/// # Panics
///
/// Panics if any row has a different arity than the header.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_owned()
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let mut out = vec![render_row(&head), render_row(&separator)];
    out.extend(rows.iter().map(|r| render_row(r)));
    out.join("\n")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// A unicode bar of `width` cells filled proportionally to
/// `fraction ∈ [0, 1]` — the text rendition of the paper's bar charts.
#[must_use]
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = "█".repeat(filled);
    s.push_str(&"·".repeat(width - filled.min(width)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = render_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn bar_fills() {
        assert_eq!(bar(0.0, 4), "····");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██··");
        assert_eq!(bar(2.0, 4), "████"); // clamped
    }
}
