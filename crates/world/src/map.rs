//! The tile map and its spatial queries.

use std::fmt;

use watchmen_math::grid::{self, Cell};
use watchmen_math::{Aabb, Vec3};

use crate::{ItemSpawner, Tile};

/// A 2.5-D game map: a uniform grid of [`Tile`]s plus spawn points and
/// item spawners.
///
/// Cell `(0, 0)` spans world coordinates `[0, cell_size)²`; the map covers
/// `[0, width·cell_size) × [0, height·cell_size)`. Everything outside the
/// grid is treated as wall.
///
/// # Examples
///
/// ```
/// use watchmen_world::{GameMap, Tile};
/// use watchmen_math::Vec3;
///
/// let mut map = GameMap::filled("empty", 8, 8, 10.0, Tile::default());
/// map.set_tile(4, 4, Tile::Wall);
/// // Wall blocks sight between opposite sides.
/// let a = Vec3::new(25.0, 45.0, 1.0);
/// let b = Vec3::new(65.0, 45.0, 1.0);
/// assert!(!map.line_of_sight(a, b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GameMap {
    name: String,
    width: usize,
    height: usize,
    cell_size: f64,
    tiles: Vec<Tile>,
    spawn_points: Vec<Vec3>,
    item_spawners: Vec<ItemSpawner>,
}

impl GameMap {
    /// Creates a map filled with a single tile.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero, or `cell_size` is not
    /// positive.
    #[must_use]
    pub fn filled(name: &str, width: usize, height: usize, cell_size: f64, tile: Tile) -> Self {
        assert!(width > 0 && height > 0, "map must be non-empty");
        assert!(cell_size > 0.0, "cell size must be positive");
        GameMap {
            name: name.to_owned(),
            width,
            height,
            cell_size,
            tiles: vec![tile; width * height],
            spawn_points: Vec::new(),
            item_spawners: Vec::new(),
        }
    }

    /// The map's name (e.g. `"q3dm17-like"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Side length of each (square) cell in world units.
    #[must_use]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The world-space bounding box of the walkable volume.
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            Vec3::ZERO,
            Vec3::new(
                self.width as f64 * self.cell_size,
                self.height as f64 * self.cell_size,
                200.0,
            ),
        )
    }

    /// The tile at grid coordinates, or [`Tile::Wall`] outside the grid.
    #[must_use]
    pub fn tile(&self, x: i32, y: i32) -> Tile {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            Tile::Wall
        } else {
            self.tiles[y as usize * self.width + x as usize]
        }
    }

    /// The tile under a world-space position.
    #[must_use]
    pub fn tile_at(&self, pos: Vec3) -> Tile {
        let c = grid::cell_of(pos, self.cell_size);
        self.tile(c.x, c.y)
    }

    /// Sets a tile.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn set_tile(&mut self, x: usize, y: usize, tile: Tile) {
        assert!(x < self.width && y < self.height, "tile ({x}, {y}) out of range");
        self.tiles[y * self.width + x] = tile;
    }

    /// Fills the axis-aligned cell rectangle `[x0, x1] × [y0, y1]`
    /// (inclusive) with a tile, clamped to the grid.
    pub fn fill_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, tile: Tile) {
        for y in y0..=y1.min(self.height - 1) {
            for x in x0..=x1.min(self.width - 1) {
                self.tiles[y * self.width + x] = tile;
            }
        }
    }

    /// Registers a player spawn point.
    ///
    /// # Panics
    ///
    /// Panics if the point is not on a walkable tile.
    pub fn add_spawn_point(&mut self, pos: Vec3) {
        assert!(self.tile_at(pos).is_walkable(), "spawn point {pos} not walkable");
        self.spawn_points.push(pos);
    }

    /// Registers an item spawner.
    ///
    /// # Panics
    ///
    /// Panics if the spawner's position is not on a walkable tile.
    pub fn add_item_spawner(&mut self, spawner: ItemSpawner) {
        assert!(
            self.tile_at(spawner.position).is_walkable(),
            "item spawner at {} not walkable",
            spawner.position
        );
        self.item_spawners.push(spawner);
    }

    /// The registered spawn points.
    #[must_use]
    pub fn spawn_points(&self) -> &[Vec3] {
        &self.spawn_points
    }

    /// The registered item spawners.
    #[must_use]
    pub fn item_spawners(&self) -> &[ItemSpawner] {
        &self.item_spawners
    }

    /// Returns `true` if the world position is over a walkable tile.
    #[must_use]
    pub fn is_walkable_pos(&self, pos: Vec3) -> bool {
        self.tile_at(pos).is_walkable()
    }

    /// Returns `true` if there is an unobstructed sight line between two
    /// points: no wall tile intersects the 2-D projection of the segment.
    ///
    /// This is the occlusion test behind the paper's vision set: "the
    /// avatars that are in a player's vision range, but behind a wall do
    /// not appear in his vision set".
    #[must_use]
    pub fn line_of_sight(&self, from: Vec3, to: Vec3) -> bool {
        // Allocation-free DDA walk: this runs O(players²) times per frame
        // in the overlay simulations.
        grid::traverse_with(from, to, self.cell_size, |c| !self.tile(c.x, c.y).blocks_sight())
    }

    /// Walks the sight line and returns the first wall cell hit, if any.
    #[must_use]
    pub fn first_obstruction(&self, from: Vec3, to: Vec3) -> Option<Cell> {
        grid::traverse(from, to, self.cell_size)
            .into_iter()
            .find(|c| self.tile(c.x, c.y).blocks_sight())
    }

    /// Renders the map as ASCII art (one character per tile, row 0 at the
    /// bottom); spawn points are drawn as `s`, item spawners as `i`.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut rows: Vec<Vec<char>> = (0..self.height)
            .map(|y| {
                (0..self.width)
                    .map(|x| {
                        self.tile(x as i32, y as i32).to_string().chars().next().unwrap_or('?')
                    })
                    .collect()
            })
            .collect();
        for p in &self.spawn_points {
            let c = grid::cell_of(*p, self.cell_size);
            if let Some(ch) = rows.get_mut(c.y as usize).and_then(|row| row.get_mut(c.x as usize)) {
                *ch = 's';
            }
        }
        for s in &self.item_spawners {
            let c = grid::cell_of(s.position, self.cell_size);
            if let Some(ch) = rows.get_mut(c.y as usize).and_then(|row| row.get_mut(c.x as usize)) {
                *ch = 'i';
            }
        }
        rows.into_iter()
            .rev()
            .map(|row| row.into_iter().collect::<String>())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The world-space center of the cell containing `pos`, at the cell's
    /// floor height (or unchanged height for non-floor tiles).
    #[must_use]
    pub fn snap_to_floor(&self, pos: Vec3) -> Vec3 {
        let h = self.tile_at(pos).floor_height().unwrap_or(pos.z);
        Vec3::new(pos.x, pos.y, h)
    }
}

impl fmt::Display for GameMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} cells of {:.1} units, {} spawns, {} items)",
            self.name,
            self.width,
            self.height,
            self.cell_size,
            self.spawn_points.len(),
            self.item_spawners.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ItemKind;

    fn open_map() -> GameMap {
        GameMap::filled("test", 10, 10, 10.0, Tile::default())
    }

    #[test]
    fn outside_grid_is_wall() {
        let map = open_map();
        assert_eq!(map.tile(-1, 0), Tile::Wall);
        assert_eq!(map.tile(0, 10), Tile::Wall);
        assert_eq!(map.tile(5, 5), Tile::default());
    }

    #[test]
    fn tile_at_world_coordinates() {
        let mut map = open_map();
        map.set_tile(2, 3, Tile::Wall);
        assert_eq!(map.tile_at(Vec3::new(25.0, 35.0, 0.0)), Tile::Wall);
        assert_eq!(map.tile_at(Vec3::new(15.0, 35.0, 0.0)), Tile::default());
    }

    #[test]
    fn line_of_sight_open_and_blocked() {
        let mut map = open_map();
        let a = Vec3::new(5.0, 55.0, 1.0);
        let b = Vec3::new(95.0, 55.0, 1.0);
        assert!(map.line_of_sight(a, b));
        map.set_tile(5, 5, Tile::Wall);
        assert!(!map.line_of_sight(a, b));
        assert_eq!(map.first_obstruction(a, b), Some(Cell::new(5, 5)));
        assert_eq!(map.first_obstruction(b, a), Some(Cell::new(5, 5)));
    }

    #[test]
    fn line_of_sight_crosses_pits() {
        let mut map = open_map();
        map.fill_rect(4, 0, 5, 9, Tile::Pit);
        assert!(map.line_of_sight(Vec3::new(5.0, 55.0, 1.0), Vec3::new(95.0, 55.0, 1.0)));
    }

    #[test]
    fn line_of_sight_outside_map_blocked() {
        let map = open_map();
        assert!(!map.line_of_sight(Vec3::new(5.0, 5.0, 0.0), Vec3::new(-50.0, 5.0, 0.0)));
    }

    #[test]
    fn fill_rect_clamps() {
        let mut map = open_map();
        map.fill_rect(8, 8, 99, 99, Tile::Wall);
        assert_eq!(map.tile(9, 9), Tile::Wall);
        assert_eq!(map.tile(7, 8), Tile::default());
    }

    #[test]
    fn spawn_and_item_registration() {
        let mut map = open_map();
        map.add_spawn_point(Vec3::new(15.0, 15.0, 0.0));
        map.add_item_spawner(ItemSpawner::new(ItemKind::Armor, Vec3::new(55.0, 55.0, 0.0), 60));
        assert_eq!(map.spawn_points().len(), 1);
        assert_eq!(map.item_spawners().len(), 1);
    }

    #[test]
    #[should_panic(expected = "not walkable")]
    fn spawn_on_wall_panics() {
        let mut map = open_map();
        map.set_tile(1, 1, Tile::Wall);
        map.add_spawn_point(Vec3::new(15.0, 15.0, 0.0));
    }

    #[test]
    fn ascii_rendering_marks_features() {
        let mut map = open_map();
        map.set_tile(0, 0, Tile::Wall);
        map.add_spawn_point(Vec3::new(15.0, 15.0, 0.0));
        let art = map.to_ascii();
        assert!(art.contains('#'));
        assert!(art.contains('s'));
        assert_eq!(art.lines().count(), 10);
    }

    #[test]
    fn snap_to_floor_uses_tile_height() {
        let mut map = open_map();
        map.set_tile(1, 1, Tile::Floor { height: 30.0 });
        let p = map.snap_to_floor(Vec3::new(15.0, 15.0, 99.0));
        assert_eq!(p.z, 30.0);
    }

    #[test]
    fn bounds_cover_grid() {
        let map = open_map();
        assert!(map.bounds().contains(Vec3::new(50.0, 50.0, 10.0)));
        assert!(!map.bounds().contains(Vec3::new(150.0, 50.0, 10.0)));
    }

    #[test]
    fn display_mentions_name() {
        assert!(open_map().to_string().contains("test"));
    }
}
