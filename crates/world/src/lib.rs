//! Game-world substrate for the Watchmen reproduction.
//!
//! The paper prototypes on Quake III: a 3-D arena ("q3dm17", *The Longest
//! Yard*) with walls, platforms, jump pads, items (health packs,
//! ammunition, weapons, armor) and respawn spots. The evaluation depends on
//! specific world features:
//!
//! * **Occlusion** — the vision set excludes "avatars that are in a
//!   player's vision range, but behind a wall"; [`GameMap::line_of_sight`]
//!   provides that test.
//! * **Hotspots** — Figure 1 shows exponential presence concentration
//!   around items and respawn spots; [`maps::q3dm17_like`] reproduces an
//!   item-driven hotspot structure.
//! * **Physics limits** — verification checks that moves "follow game
//!   physics (e.g., gravity, limited velocity, angular speed, permitted
//!   position)"; [`PhysicsConfig`] is the single source of those limits.
//!
//! # Examples
//!
//! ```
//! use watchmen_world::maps;
//!
//! let map = maps::q3dm17_like();
//! let spawn = map.spawn_points()[0];
//! assert!(map.is_walkable_pos(spawn));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod items;
mod map;
pub mod maps;
mod physics;
mod pvs;
mod tile;

pub use items::{ItemInstance, ItemKind, ItemSpawner};
pub use map::GameMap;
pub use physics::{step_movement, MoveOutcome, PhysicsConfig};
pub use pvs::potentially_visible_set;
pub use tile::Tile;
