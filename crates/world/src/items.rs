//! Game items: health packs, ammunition, weapons, armor.
//!
//! Figure 1 of the paper attributes player-presence hotspots to "their
//! strategic location or presence of important game items"; the legend
//! lists health packs, ammunitions, weapons, armors and respawn spots.
//! Items respawn a fixed number of frames after being picked up, exactly
//! like Quake III item spawners.

use std::fmt;

use watchmen_math::Vec3;

/// The kinds of items that can appear in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemKind {
    /// Restores 25 health (capped at the max).
    HealthPack,
    /// Restores a large amount of health and raises the cap temporarily.
    MegaHealth,
    /// Refills ammunition for the current weapon.
    Ammo,
    /// A weapon pickup (the specific weapon is decided by the game layer).
    Weapon,
    /// Absorbs a fraction of incoming damage.
    Armor,
}

impl ItemKind {
    /// All item kinds, in display order.
    pub const ALL: [ItemKind; 5] = [
        ItemKind::HealthPack,
        ItemKind::MegaHealth,
        ItemKind::Ammo,
        ItemKind::Weapon,
        ItemKind::Armor,
    ];

    /// How attractive the item is to bots (relative weight); mega items
    /// draw crowds, which is what produces Figure 1's hotspots.
    #[must_use]
    pub fn attraction(&self) -> f64 {
        match self {
            ItemKind::HealthPack => 1.0,
            ItemKind::MegaHealth => 3.0,
            ItemKind::Ammo => 0.8,
            ItemKind::Weapon => 2.0,
            ItemKind::Armor => 1.5,
        }
    }
}

impl fmt::Display for ItemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ItemKind::HealthPack => "health pack",
            ItemKind::MegaHealth => "mega health",
            ItemKind::Ammo => "ammunition",
            ItemKind::Weapon => "weapon",
            ItemKind::Armor => "armor",
        };
        f.write_str(name)
    }
}

/// A fixed spawner that produces an item at a position and respawns it a
/// fixed delay after each pickup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemSpawner {
    /// What the spawner produces.
    pub kind: ItemKind,
    /// Where the item appears.
    pub position: Vec3,
    /// Frames between a pickup and the next respawn.
    pub respawn_frames: u64,
}

impl ItemSpawner {
    /// Creates a spawner.
    #[must_use]
    pub const fn new(kind: ItemKind, position: Vec3, respawn_frames: u64) -> Self {
        ItemSpawner { kind, position, respawn_frames }
    }
}

/// The live state of one spawner's item during a game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemInstance {
    spawner: ItemSpawner,
    /// Frame at which the item (re)becomes available.
    available_at: u64,
}

impl ItemInstance {
    /// Creates an instance that is available immediately.
    #[must_use]
    pub const fn new(spawner: ItemSpawner) -> Self {
        ItemInstance { spawner, available_at: 0 }
    }

    /// The underlying spawner.
    #[must_use]
    pub fn spawner(&self) -> &ItemSpawner {
        &self.spawner
    }

    /// Returns `true` if the item can be picked up at `frame`.
    #[must_use]
    pub fn is_available(&self, frame: u64) -> bool {
        frame >= self.available_at
    }

    /// Attempts to pick the item up at `frame`; returns the kind on
    /// success and schedules the respawn.
    pub fn try_pickup(&mut self, frame: u64) -> Option<ItemKind> {
        if self.is_available(frame) {
            self.available_at = frame + self.spawner.respawn_frames;
            Some(self.spawner.kind)
        } else {
            None
        }
    }

    /// Frames until the item is available again (`0` if available now).
    #[must_use]
    pub fn frames_until_available(&self, frame: u64) -> u64 {
        self.available_at.saturating_sub(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawner() -> ItemSpawner {
        ItemSpawner::new(ItemKind::HealthPack, Vec3::ZERO, 100)
    }

    #[test]
    fn pickup_then_respawn_cycle() {
        let mut item = ItemInstance::new(spawner());
        assert!(item.is_available(0));
        assert_eq!(item.try_pickup(10), Some(ItemKind::HealthPack));
        assert!(!item.is_available(11));
        assert_eq!(item.try_pickup(50), None);
        assert_eq!(item.frames_until_available(50), 60);
        assert!(item.is_available(110));
        assert_eq!(item.try_pickup(110), Some(ItemKind::HealthPack));
    }

    #[test]
    fn attraction_ordering() {
        assert!(ItemKind::MegaHealth.attraction() > ItemKind::HealthPack.attraction());
        assert!(ItemKind::Weapon.attraction() > ItemKind::Ammo.attraction());
        for kind in ItemKind::ALL {
            assert!(kind.attraction() > 0.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ItemKind::MegaHealth.to_string(), "mega health");
        for kind in ItemKind::ALL {
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn frames_until_available_when_ready() {
        let item = ItemInstance::new(spawner());
        assert_eq!(item.frames_until_available(42), 0);
        assert_eq!(item.spawner().respawn_frames, 100);
    }
}
