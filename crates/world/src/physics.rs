//! Movement physics: the game rules that verification enforces.
//!
//! The paper's position-update checks "control whether the movements
//! follow game physics (e.g., gravity, limited velocity, angular speed,
//! permitted position)". [`PhysicsConfig`] is the shared contract: the
//! honest game layer integrates motion with it, and the verification layer
//! uses the same numbers as its acceptance thresholds.

use watchmen_math::Vec3;

use crate::GameMap;

/// Global movement limits and integration parameters.
///
/// Defaults approximate Quake III (world units ≈ Quake units / 8, so the
/// default 40 units/s ≈ Quake's 320 ups run speed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicsConfig {
    /// Maximum horizontal speed (world units / s).
    pub max_speed: f64,
    /// Maximum horizontal acceleration (world units / s²).
    pub max_accel: f64,
    /// Downward gravity (world units / s²).
    pub gravity: f64,
    /// Initial vertical speed of a jump (world units / s).
    pub jump_speed: f64,
    /// Maximum aim rotation speed (radians / s).
    pub max_angular_speed: f64,
    /// Avatar collision radius (world units).
    pub avatar_radius: f64,
}

impl Default for PhysicsConfig {
    fn default() -> Self {
        PhysicsConfig {
            max_speed: 40.0,
            max_accel: 200.0,
            gravity: 100.0,
            jump_speed: 34.0,
            max_angular_speed: 2.0 * std::f64::consts::PI,
            avatar_radius: 2.0,
        }
    }
}

impl PhysicsConfig {
    /// The farthest an avatar can travel horizontally in `dt` seconds.
    #[must_use]
    pub fn max_step(&self, dt: f64) -> f64 {
        self.max_speed * dt
    }

    /// The largest legal aim rotation over `dt` seconds.
    #[must_use]
    pub fn max_turn(&self, dt: f64) -> f64 {
        self.max_angular_speed * dt
    }
}

/// The result of integrating one movement step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveOutcome {
    /// The post-step position.
    pub position: Vec3,
    /// The post-step velocity (collisions zero the blocked components).
    pub velocity: Vec3,
    /// `true` if the avatar ended the step on the ground.
    pub on_ground: bool,
    /// `true` if the avatar fell into a pit (the game layer should respawn
    /// and apply death).
    pub fell_in_pit: bool,
    /// `true` if a jump pad launched the avatar this step.
    pub launched: bool,
}

/// Integrates one step of avatar movement against the map.
///
/// The horizontal velocity is clamped to `max_speed`, gravity is applied
/// while airborne, wall collisions slide (the blocked axis component is
/// cancelled), jump pads launch, and pits report a lethal fall.
///
/// # Examples
///
/// ```
/// use watchmen_world::{maps, PhysicsConfig};
/// use watchmen_math::Vec3;
///
/// let map = maps::arena(16, 10.0);
/// let cfg = PhysicsConfig::default();
/// let start = Vec3::new(50.0, 50.0, 0.0);
/// let out = watchmen_world::step_movement(&map, &cfg, start, Vec3::new(10.0, 0.0, 0.0), 0.05);
/// assert!(out.position.x > start.x);
/// ```
#[must_use]
pub fn step_movement(
    map: &GameMap,
    cfg: &PhysicsConfig,
    position: Vec3,
    velocity: Vec3,
    dt: f64,
) -> MoveOutcome {
    // Clamp horizontal speed; vertical speed is governed by gravity/jumps.
    let mut vel = velocity.horizontal().clamp_length(cfg.max_speed) + Vec3::Z * velocity.z;

    // Attempt the horizontal move axis-by-axis so walls slide.
    let mut pos = position;
    let try_x = Vec3::new(pos.x + vel.x * dt, pos.y, pos.z);
    if map.tile_at(try_x).blocks_movement() {
        vel.x = 0.0;
    } else {
        pos.x = try_x.x;
    }
    let try_y = Vec3::new(pos.x, pos.y + vel.y * dt, pos.z);
    if map.tile_at(try_y).blocks_movement() {
        vel.y = 0.0;
    } else {
        pos.y = try_y.y;
    }

    let tile = map.tile_at(pos);
    if tile.is_lethal() {
        return MoveOutcome {
            position: pos,
            velocity: Vec3::ZERO,
            on_ground: false,
            fell_in_pit: true,
            launched: false,
        };
    }

    // Vertical motion: gravity, floor clamping, jump pads.
    let floor = tile.floor_height().unwrap_or(0.0);
    let mut launched = false;
    vel.z -= cfg.gravity * dt;
    pos.z += vel.z * dt;
    let mut on_ground = false;
    if pos.z <= floor {
        pos.z = floor;
        vel.z = 0.0;
        on_ground = true;
        if let crate::Tile::JumpPad { boost, .. } = tile {
            vel.z = boost;
            on_ground = false;
            launched = true;
        }
    }

    MoveOutcome { position: pos, velocity: vel, on_ground, fell_in_pit: false, launched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{maps, Tile};

    fn setup() -> (GameMap, PhysicsConfig) {
        (maps::arena(16, 10.0), PhysicsConfig::default())
    }

    #[test]
    fn straight_move_advances() {
        let (map, cfg) = setup();
        let out =
            step_movement(&map, &cfg, Vec3::new(50.0, 50.0, 0.0), Vec3::new(20.0, 0.0, 0.0), 0.05);
        assert!((out.position.x - 51.0).abs() < 1e-9);
        assert!(out.on_ground);
        assert!(!out.fell_in_pit);
    }

    #[test]
    fn speed_is_clamped() {
        let (map, cfg) = setup();
        let out = step_movement(
            &map,
            &cfg,
            Vec3::new(80.0, 80.0, 0.0),
            Vec3::new(1000.0, 0.0, 0.0),
            0.05,
        );
        let moved = out.position.x - 80.0;
        assert!(moved <= cfg.max_speed * 0.05 + 1e-9, "moved {moved}");
    }

    #[test]
    fn wall_blocks_and_slides() {
        let (mut map, cfg) = setup();
        map.set_tile(6, 5, Tile::Wall);
        // Moving diagonally into the wall: x blocked, y slides.
        let pos = Vec3::new(59.0, 55.0, 0.0);
        let out = step_movement(&map, &cfg, pos, Vec3::new(40.0, 20.0, 0.0), 0.1);
        assert_eq!(out.velocity.x, 0.0);
        assert!(out.position.y > pos.y);
        assert_eq!(out.position.x, pos.x);
    }

    #[test]
    fn gravity_pulls_down_to_floor() {
        let (map, cfg) = setup();
        let mut pos = Vec3::new(50.0, 50.0, 20.0);
        let mut vel = Vec3::ZERO;
        let mut landed = false;
        for _ in 0..100 {
            let out = step_movement(&map, &cfg, pos, vel, 0.05);
            pos = out.position;
            vel = out.velocity;
            if out.on_ground {
                landed = true;
                break;
            }
        }
        assert!(landed);
        assert_eq!(pos.z, 0.0);
    }

    #[test]
    fn jump_pad_launches() {
        let (mut map, cfg) = setup();
        map.set_tile(5, 5, Tile::JumpPad { height: 0.0, boost: 30.0 });
        let out = step_movement(&map, &cfg, Vec3::new(55.0, 55.0, 0.0), Vec3::ZERO, 0.05);
        assert!(out.launched);
        assert_eq!(out.velocity.z, 30.0);
        assert!(!out.on_ground);
    }

    #[test]
    fn pit_is_lethal() {
        let (mut map, cfg) = setup();
        map.set_tile(5, 5, Tile::Pit);
        let out =
            step_movement(&map, &cfg, Vec3::new(54.0, 55.0, 0.0), Vec3::new(40.0, 0.0, 0.0), 0.1);
        assert!(out.fell_in_pit);
    }

    #[test]
    fn raised_floor_supports() {
        let (mut map, cfg) = setup();
        map.set_tile(5, 5, Tile::Floor { height: 15.0 });
        let out = step_movement(&map, &cfg, Vec3::new(55.0, 55.0, 15.0), Vec3::ZERO, 0.05);
        assert!(out.on_ground);
        assert_eq!(out.position.z, 15.0);
    }

    #[test]
    fn config_helpers() {
        let cfg = PhysicsConfig::default();
        assert_eq!(cfg.max_step(0.05), cfg.max_speed * 0.05);
        assert_eq!(cfg.max_turn(0.05), cfg.max_angular_speed * 0.05);
    }
}
