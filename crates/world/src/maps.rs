//! Built-in maps.
//!
//! [`q3dm17_like`] reproduces the *structure* of Quake III's q3dm17 ("The
//! Longest Yard", the map used throughout the paper's evaluation): a
//! floating arena over a void, with raised platforms reached by jump pads
//! and items concentrated at strategic locations — the ingredients behind
//! Figure 1's presence hotspots.

use watchmen_math::Vec3;

use crate::{GameMap, ItemKind, ItemSpawner, Tile};

/// Standard respawn delay for ordinary items (frames at 20 Hz: 25 s).
const ITEM_RESPAWN: u64 = 500;
/// Respawn delay for the mega health (longer, like Quake III's 35 s).
const MEGA_RESPAWN: u64 = 700;

/// A flat, open square arena of `n × n` cells with walls on the border and
/// four spawn points; useful for tests.
///
/// # Examples
///
/// ```
/// let map = watchmen_world::maps::arena(16, 10.0);
/// assert_eq!(map.width(), 16);
/// assert_eq!(map.spawn_points().len(), 4);
/// ```
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn arena(n: usize, cell_size: f64) -> GameMap {
    assert!(n >= 4, "arena needs at least 4x4 cells");
    let mut map = GameMap::filled("arena", n, n, cell_size, Tile::default());
    map.fill_rect(0, 0, n - 1, 0, Tile::Wall);
    map.fill_rect(0, n - 1, n - 1, n - 1, Tile::Wall);
    map.fill_rect(0, 0, 0, n - 1, Tile::Wall);
    map.fill_rect(n - 1, 0, n - 1, n - 1, Tile::Wall);
    let c = cell_size;
    let lo = 1.5 * c;
    let hi = (n as f64 - 1.5) * c;
    for pos in [
        Vec3::new(lo, lo, 0.0),
        Vec3::new(hi, lo, 0.0),
        Vec3::new(lo, hi, 0.0),
        Vec3::new(hi, hi, 0.0),
    ] {
        map.add_spawn_point(pos);
    }
    map
}

/// A q3dm17-style floating arena: a 32×24 grid over a void, with a central
/// mega-health platform, two raised side platforms with the best weapons,
/// jump pads linking them, and health/ammo scattered at strategic spots.
///
/// Eight respawn spots sit along the long axis. Items use Quake III-like
/// respawn delays, so bots repeatedly converge on the same places —
/// producing the presence heatmap of Figure 1.
///
/// # Examples
///
/// ```
/// let map = watchmen_world::maps::q3dm17_like();
/// assert!(map.spawn_points().len() >= 8);
/// assert!(map.item_spawners().len() >= 10);
/// ```
#[must_use]
pub fn q3dm17_like() -> GameMap {
    let cell = 10.0;
    let (w, h) = (32usize, 24usize);
    let mut map = GameMap::filled("q3dm17-like", w, h, cell, Tile::Pit);

    // Main deck: a long central platform.
    map.fill_rect(4, 8, 27, 15, Tile::Floor { height: 0.0 });
    // Two side decks (raised).
    map.fill_rect(8, 2, 14, 5, Tile::Floor { height: 20.0 });
    map.fill_rect(17, 18, 23, 21, Tile::Floor { height: 20.0 });
    // Narrow bridges connecting decks to the main platform.
    map.fill_rect(11, 6, 11, 7, Tile::Floor { height: 10.0 });
    map.fill_rect(20, 16, 20, 17, Tile::Floor { height: 10.0 });
    // A handful of wall pillars on the main deck for occlusion.
    map.fill_rect(9, 11, 9, 12, Tile::Wall);
    map.fill_rect(22, 11, 22, 12, Tile::Wall);
    map.fill_rect(15, 9, 16, 9, Tile::Wall);
    map.fill_rect(15, 14, 16, 14, Tile::Wall);
    // Jump pads launching from the main deck toward the side decks.
    map.set_tile(11, 8, Tile::JumpPad { height: 0.0, boost: 45.0 });
    map.set_tile(20, 15, Tile::JumpPad { height: 0.0, boost: 45.0 });
    map.set_tile(6, 12, Tile::JumpPad { height: 0.0, boost: 45.0 });
    map.set_tile(25, 11, Tile::JumpPad { height: 0.0, boost: 45.0 });

    // Respawn spots along the main deck.
    for k in 0..8 {
        let x = (5.5 + k as f64 * 3.0) * cell;
        let y = if k % 2 == 0 { 9.5 } else { 14.5 } * cell;
        map.add_spawn_point(Vec3::new(x, y, 0.0));
    }

    // Items. The center hosts the mega health (the map's main hotspot).
    let items = [
        (ItemKind::MegaHealth, 15.5, 11.5, 0.0, MEGA_RESPAWN),
        (ItemKind::Weapon, 11.5, 3.5, 20.0, ITEM_RESPAWN), // railgun deck
        (ItemKind::Weapon, 20.5, 19.5, 20.0, ITEM_RESPAWN), // rocket deck
        (ItemKind::Armor, 5.5, 11.5, 0.0, ITEM_RESPAWN),
        (ItemKind::Armor, 26.5, 11.5, 0.0, ITEM_RESPAWN),
        (ItemKind::HealthPack, 8.5, 9.5, 0.0, ITEM_RESPAWN / 2),
        (ItemKind::HealthPack, 23.5, 14.5, 0.0, ITEM_RESPAWN / 2),
        (ItemKind::HealthPack, 12.5, 14.5, 0.0, ITEM_RESPAWN / 2),
        (ItemKind::Ammo, 18.5, 9.5, 0.0, ITEM_RESPAWN / 2),
        (ItemKind::Ammo, 13.5, 11.5, 0.0, ITEM_RESPAWN / 2),
        (ItemKind::Ammo, 10.5, 2.5, 20.0, ITEM_RESPAWN / 2),
        (ItemKind::Ammo, 21.5, 20.5, 20.0, ITEM_RESPAWN / 2),
    ];
    for (kind, x, y, z, respawn) in items {
        map.add_item_spawner(ItemSpawner::new(kind, Vec3::new(x * cell, y * cell, z), respawn));
    }
    map
}

/// A corridor-heavy indoor map with long sight lines broken by walls;
/// exercises occlusion much more than the open arena.
///
/// # Examples
///
/// ```
/// let map = watchmen_world::maps::corridors();
/// assert!(map.spawn_points().len() >= 4);
/// ```
#[must_use]
pub fn corridors() -> GameMap {
    let cell = 10.0;
    let n = 20usize;
    let mut map = GameMap::filled("corridors", n, n, cell, Tile::default());
    // Border walls.
    map.fill_rect(0, 0, n - 1, 0, Tile::Wall);
    map.fill_rect(0, n - 1, n - 1, n - 1, Tile::Wall);
    map.fill_rect(0, 0, 0, n - 1, Tile::Wall);
    map.fill_rect(n - 1, 0, n - 1, n - 1, Tile::Wall);
    // Inner wall lattice with door gaps.
    for k in [5usize, 10, 15] {
        map.fill_rect(k, 1, k, n - 2, Tile::Wall);
        map.set_tile(k, 4, Tile::default());
        map.set_tile(k, 9, Tile::default());
        map.set_tile(k, 14, Tile::default());
        map.fill_rect(1, k, n - 2, k, Tile::Wall);
        map.set_tile(3, k, Tile::default());
        map.set_tile(8, k, Tile::default());
        map.set_tile(13, k, Tile::default());
        map.set_tile(17, k, Tile::default());
    }
    for pos in [
        Vec3::new(25.0, 25.0, 0.0),
        Vec3::new(175.0, 25.0, 0.0),
        Vec3::new(25.0, 175.0, 0.0),
        Vec3::new(175.0, 175.0, 0.0),
    ] {
        map.add_spawn_point(pos);
    }
    for (kind, x, y) in [
        (ItemKind::MegaHealth, 85.0, 85.0),
        (ItemKind::Weapon, 25.0, 85.0),
        (ItemKind::Armor, 135.0, 135.0),
        (ItemKind::HealthPack, 85.0, 25.0),
        (ItemKind::Ammo, 135.0, 25.0),
    ] {
        map.add_item_spawner(ItemSpawner::new(kind, Vec3::new(x, y, 0.0), ITEM_RESPAWN));
    }
    map
}

/// A vertical "tower" map: three stacked rings of floor at increasing
/// heights connected by jump pads, with the best items at the top —
/// stresses the 2.5-D height handling (falls, pads, raised floors) far
/// more than the mostly-flat arena.
///
/// # Examples
///
/// ```
/// let map = watchmen_world::maps::tower();
/// assert!(map.spawn_points().len() >= 4);
/// ```
#[must_use]
pub fn tower() -> GameMap {
    let cell = 10.0;
    let n = 20usize;
    let mut map = GameMap::filled("tower", n, n, cell, Tile::Pit);
    // Ground ring (height 0).
    map.fill_rect(2, 2, 17, 17, Tile::Floor { height: 0.0 });
    // Middle ring (height 25) occupies a band.
    map.fill_rect(5, 5, 14, 14, Tile::Floor { height: 25.0 });
    // Top platform (height 50).
    map.fill_rect(8, 8, 11, 11, Tile::Floor { height: 50.0 });
    // Occluding pillars on the ground ring.
    map.fill_rect(4, 10, 4, 11, Tile::Wall);
    map.fill_rect(15, 8, 15, 9, Tile::Wall);
    // Jump pads up the tower.
    map.set_tile(5, 10, Tile::JumpPad { height: 0.0, boost: 55.0 });
    map.set_tile(14, 9, Tile::JumpPad { height: 0.0, boost: 55.0 });
    map.set_tile(8, 8, Tile::JumpPad { height: 25.0, boost: 55.0 });

    for pos in [
        Vec3::new(30.0, 30.0, 0.0),
        Vec3::new(170.0, 30.0, 0.0),
        Vec3::new(30.0, 170.0, 0.0),
        Vec3::new(170.0, 170.0, 0.0),
    ] {
        map.add_spawn_point(pos);
    }
    for (kind, x, y, z) in [
        (ItemKind::MegaHealth, 95.0, 95.0, 50.0), // the prize at the top
        (ItemKind::Weapon, 105.0, 105.0, 50.0),
        (ItemKind::Armor, 75.0, 75.0, 25.0),
        (ItemKind::HealthPack, 125.0, 75.0, 25.0),
        (ItemKind::Ammo, 35.0, 95.0, 0.0),
        (ItemKind::HealthPack, 165.0, 95.0, 0.0),
    ] {
        map.add_item_spawner(ItemSpawner::new(kind, Vec3::new(x, y, z), ITEM_RESPAWN));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_enclosed() {
        let map = arena(8, 10.0);
        for x in 0..8 {
            assert_eq!(map.tile(x, 0), Tile::Wall);
            assert_eq!(map.tile(x, 7), Tile::Wall);
        }
        assert!(map.tile(4, 4).is_walkable());
    }

    #[test]
    fn q3dm17_spawns_and_items_walkable() {
        let map = q3dm17_like();
        for p in map.spawn_points() {
            assert!(map.is_walkable_pos(*p), "spawn {p} not walkable");
        }
        for s in map.item_spawners() {
            assert!(map.is_walkable_pos(s.position), "item at {} not walkable", s.position);
        }
    }

    #[test]
    fn q3dm17_has_void_and_pads() {
        let map = q3dm17_like();
        assert_eq!(map.tile(0, 0), Tile::Pit);
        let pads = (0..map.width() as i32)
            .flat_map(|x| (0..map.height() as i32).map(move |y| (x, y)))
            .filter(|&(x, y)| matches!(map.tile(x, y), Tile::JumpPad { .. }))
            .count();
        assert!(pads >= 4);
    }

    #[test]
    fn q3dm17_pillars_occlude() {
        let map = q3dm17_like();
        // Points on either side of the pillar at cell (9, 11..12).
        let a = Vec3::new(75.0, 115.0, 1.0);
        let b = Vec3::new(115.0, 115.0, 1.0);
        assert!(!map.line_of_sight(a, b));
        // An unobstructed pair on the main deck.
        let c = Vec3::new(125.0, 125.0, 1.0);
        let d = Vec3::new(185.0, 125.0, 1.0);
        assert!(map.line_of_sight(c, d));
    }

    #[test]
    fn q3dm17_mega_health_is_central() {
        let map = q3dm17_like();
        let mega = map
            .item_spawners()
            .iter()
            .find(|s| s.kind == ItemKind::MegaHealth)
            .expect("mega health present");
        let center = map.bounds().center().horizontal();
        assert!(mega.position.horizontal_distance(center) < 60.0);
    }

    #[test]
    fn corridors_has_occlusion() {
        let map = corridors();
        let a = Vec3::new(25.0, 25.0, 0.0);
        let b = Vec3::new(175.0, 25.0, 0.0);
        assert!(!map.line_of_sight(a, b));
    }

    #[test]
    fn corridors_rooms_are_connected_enough() {
        // Door gaps exist: a straight line through a door succeeds.
        let map = corridors();
        assert!(map.line_of_sight(Vec3::new(45.0, 45.0, 0.0), Vec3::new(55.0, 45.0, 0.0)));
    }

    #[test]
    fn tower_heights_stack() {
        let map = tower();
        assert_eq!(map.tile_at(Vec3::new(30.0, 30.0, 0.0)).floor_height(), Some(0.0));
        assert_eq!(map.tile_at(Vec3::new(75.0, 75.0, 0.0)).floor_height(), Some(25.0));
        assert_eq!(map.tile_at(Vec3::new(95.0, 95.0, 0.0)).floor_height(), Some(50.0));
        for p in map.spawn_points() {
            assert!(map.is_walkable_pos(*p));
        }
        for s in map.item_spawners() {
            assert!(map.is_walkable_pos(s.position));
        }
    }

    #[test]
    fn tower_supports_play() {
        // A session on the tower runs and produces pickups despite the
        // vertical layout.
        use crate::PhysicsConfig;
        let map = tower();
        let cfg = PhysicsConfig::default();
        let mut pos = Vec3::new(55.0, 105.0, 0.0); // on a ground jump pad
        let mut vel = Vec3::ZERO;
        let mut max_z: f64 = 0.0;
        for _ in 0..60 {
            let out = crate::step_movement(&map, &cfg, pos, vel, 0.05);
            pos = out.position;
            vel = out.velocity;
            max_z = max_z.max(pos.z);
        }
        assert!(max_z > 10.0, "jump pad never lifted the avatar: {max_z}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_arena_panics() {
        let _ = arena(2, 10.0);
    }
}
