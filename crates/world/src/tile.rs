//! Map tiles.

use std::fmt;

/// One cell of the 2.5-D tile map.
///
/// The map is a uniform grid; each cell is either walkable floor (at a
/// given height), an opaque wall, a deadly pit, or a jump pad that
/// launches avatars upward (q3dm17's signature feature).
///
/// # Examples
///
/// ```
/// use watchmen_world::Tile;
///
/// assert!(Tile::Floor { height: 0.0 }.is_walkable());
/// assert!(Tile::Wall.blocks_sight());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tile {
    /// Walkable floor at the given height.
    Floor {
        /// Floor elevation; avatars stand at this `z`.
        height: f64,
    },
    /// An opaque, impassable wall.
    Wall,
    /// A pit: walking in kills the avatar (forces a respawn).
    Pit,
    /// A jump pad on the floor that launches avatars with the given
    /// vertical boost.
    JumpPad {
        /// Floor elevation of the pad.
        height: f64,
        /// Vertical launch speed applied on contact.
        boost: f64,
    },
}

impl Tile {
    /// Returns `true` if avatars can stand on this tile.
    #[must_use]
    pub fn is_walkable(&self) -> bool {
        matches!(self, Tile::Floor { .. } | Tile::JumpPad { .. })
    }

    /// Returns `true` if the tile blocks line of sight.
    #[must_use]
    pub fn blocks_sight(&self) -> bool {
        matches!(self, Tile::Wall)
    }

    /// Returns `true` if the tile blocks movement.
    #[must_use]
    pub fn blocks_movement(&self) -> bool {
        matches!(self, Tile::Wall)
    }

    /// Returns `true` if entering the tile is lethal.
    #[must_use]
    pub fn is_lethal(&self) -> bool {
        matches!(self, Tile::Pit)
    }

    /// The floor height, if the tile has one.
    #[must_use]
    pub fn floor_height(&self) -> Option<f64> {
        match self {
            Tile::Floor { height } | Tile::JumpPad { height, .. } => Some(*height),
            Tile::Wall | Tile::Pit => None,
        }
    }
}

impl Default for Tile {
    fn default() -> Self {
        Tile::Floor { height: 0.0 }
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Tile::Floor { .. } => '.',
            Tile::Wall => '#',
            Tile::Pit => ' ',
            Tile::JumpPad { .. } => '^',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkability() {
        assert!(Tile::Floor { height: 1.0 }.is_walkable());
        assert!(Tile::JumpPad { height: 0.0, boost: 10.0 }.is_walkable());
        assert!(!Tile::Wall.is_walkable());
        assert!(!Tile::Pit.is_walkable());
    }

    #[test]
    fn sight_and_movement() {
        assert!(Tile::Wall.blocks_sight());
        assert!(Tile::Wall.blocks_movement());
        assert!(!Tile::Pit.blocks_sight()); // you can see across a pit
        assert!(!Tile::Pit.blocks_movement()); // …and fall into it
    }

    #[test]
    fn lethality_and_heights() {
        assert!(Tile::Pit.is_lethal());
        assert!(!Tile::Wall.is_lethal());
        assert_eq!(Tile::Floor { height: 2.0 }.floor_height(), Some(2.0));
        assert_eq!(Tile::Wall.floor_height(), None);
        assert_eq!(Tile::default().floor_height(), Some(0.0));
    }

    #[test]
    fn display_glyphs() {
        assert_eq!(format!("{}", Tile::Wall), "#");
        assert_eq!(format!("{}", Tile::default()), ".");
    }
}
