//! Potentially visible sets.
//!
//! Quake III's interest filtering is "done via potentially visible sets
//! (PVS) that determine which players are visible and hence should receive
//! an update". The Client/Server baseline in the paper's evaluation sends
//! frequent updates exactly for PVS-visible avatars, so we provide the
//! same primitive: pairwise mutual visibility bounded by a view distance.

use watchmen_math::Vec3;

use crate::GameMap;

/// Computes the potentially visible set of observer `i`: the indices of
/// every *other* position within `view_distance` with an unobstructed
/// sight line.
///
/// # Examples
///
/// ```
/// use watchmen_world::{maps, potentially_visible_set};
/// use watchmen_math::Vec3;
///
/// let map = maps::arena(16, 10.0);
/// let positions = vec![
///     Vec3::new(20.0, 20.0, 0.0),
///     Vec3::new(30.0, 20.0, 0.0),
///     Vec3::new(140.0, 140.0, 0.0),
/// ];
/// let pvs = potentially_visible_set(&map, &positions, 0, 50.0);
/// assert_eq!(pvs, vec![1]);
/// ```
///
/// # Panics
///
/// Panics if `i` is out of range.
#[must_use]
pub fn potentially_visible_set(
    map: &GameMap,
    positions: &[Vec3],
    i: usize,
    view_distance: f64,
) -> Vec<usize> {
    let me = positions[i];
    positions
        .iter()
        .enumerate()
        .filter(|&(j, p)| j != i && me.distance(*p) <= view_distance && map.line_of_sight(me, *p))
        .map(|(j, _)| j)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{maps, Tile};

    #[test]
    fn pvs_excludes_self_and_distant() {
        let map = maps::arena(16, 10.0);
        let positions = vec![
            Vec3::new(20.0, 20.0, 0.0),
            Vec3::new(25.0, 20.0, 0.0),
            Vec3::new(145.0, 145.0, 0.0),
        ];
        let pvs = potentially_visible_set(&map, &positions, 0, 30.0);
        assert_eq!(pvs, vec![1]);
    }

    #[test]
    fn pvs_respects_walls() {
        let mut map = maps::arena(16, 10.0);
        map.fill_rect(7, 1, 7, 14, Tile::Wall);
        let positions = vec![Vec3::new(30.0, 50.0, 0.0), Vec3::new(120.0, 50.0, 0.0)];
        assert!(potentially_visible_set(&map, &positions, 0, 500.0).is_empty());
        assert!(potentially_visible_set(&map, &positions, 1, 500.0).is_empty());
    }

    #[test]
    fn pvs_is_symmetric_in_open_space() {
        let map = maps::arena(16, 10.0);
        let positions = vec![Vec3::new(30.0, 50.0, 0.0), Vec3::new(120.0, 50.0, 0.0)];
        let a = potentially_visible_set(&map, &positions, 0, 500.0);
        let b = potentially_visible_set(&map, &positions, 1, 500.0);
        assert_eq!(a, vec![1]);
        assert_eq!(b, vec![0]);
    }
}
