//! Property/fuzz-style coverage for the UDP framing and the wire codec.
//!
//! The receive path's contract: whatever bytes arrive, classification
//! never panics and lands each datagram in exactly one of
//! {accepted, malformed, truncated}. The golden tests pin the header
//! layout so a codec change cannot silently break cross-version
//! interop.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use watchmen_crypto::rng::Xoshiro256;
use watchmen_net::udp::{encode_frame, parse_frame, Recv, UdpEndpoint, HEADER_LEN, MAX_PAYLOAD};
use watchmen_net::wire::{GetBytes, PutBytes};

/// The header layout, pinned byte for byte: magic "WM", big-endian node
/// id, big-endian payload length, then the payload.
#[test]
fn golden_header_layout() {
    let frame = encode_frame(0x0102_0304, b"abc");
    assert_eq!(
        frame,
        vec![0x57, 0x4d, 0x01, 0x02, 0x03, 0x04, 0x00, 0x03, b'a', b'b', b'c'],
        "frame header layout changed — this breaks wire interop"
    );
    assert_eq!(frame.len(), HEADER_LEN + 3);
    let (id, payload) = parse_frame(&frame).expect("golden frame parses");
    assert_eq!(id, 0x0102_0304);
    assert_eq!(payload, b"abc");
}

#[test]
fn golden_wire_primitives_are_big_endian() {
    let mut buf = Vec::new();
    buf.put_u8(0xab);
    buf.put_u16(0x1234);
    buf.put_u32(0xdead_beef);
    buf.put_u64(0x0102_0304_0506_0708);
    buf.put_i32(-2);
    assert_eq!(
        buf,
        vec![
            0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
            0x08, 0xff, 0xff, 0xff, 0xfe,
        ]
    );
}

/// Round-trips randomized sequences of every put/get primitive.
#[test]
fn wire_codec_roundtrips_random_sequences() {
    let mut rng = Xoshiro256::new(0xc0dec);
    for _ in 0..500 {
        let kinds: Vec<u64> = (0..rng.next_range(12) + 1).map(|_| rng.next_range(7)).collect();
        let mut buf = Vec::new();
        let mut expected: Vec<String> = Vec::new();
        for &k in &kinds {
            match k {
                0 => {
                    let v = rng.next_u64() as u8;
                    buf.put_u8(v);
                    expected.push(format!("u8:{v}"));
                }
                1 => {
                    let v = rng.next_u64() as u16;
                    buf.put_u16(v);
                    expected.push(format!("u16:{v}"));
                }
                2 => {
                    let v = rng.next_u64() as u32;
                    buf.put_u32(v);
                    expected.push(format!("u32:{v}"));
                }
                3 => {
                    let v = rng.next_u64();
                    buf.put_u64(v);
                    expected.push(format!("u64:{v}"));
                }
                4 => {
                    let v = rng.next_u64() as i32;
                    buf.put_i32(v);
                    expected.push(format!("i32:{v}"));
                }
                5 => {
                    let v = (rng.next_f64() * 1e6) as f32;
                    buf.put_f32(v);
                    expected.push(format!("f32:{}", v.to_bits()));
                }
                _ => {
                    let v = rng.next_f64() * 1e9 - 5e8;
                    buf.put_f64(v);
                    expected.push(format!("f64:{}", v.to_bits()));
                }
            }
        }
        let mut cursor: &[u8] = &buf;
        let mut decoded: Vec<String> = Vec::new();
        for &k in &kinds {
            decoded.push(match k {
                0 => format!("u8:{}", cursor.get_u8()),
                1 => format!("u16:{}", cursor.get_u16()),
                2 => format!("u32:{}", cursor.get_u32()),
                3 => format!("u64:{}", cursor.get_u64()),
                4 => format!("i32:{}", cursor.get_i32()),
                5 => format!("f32:{}", cursor.get_f32().to_bits()),
                _ => format!("f64:{}", cursor.get_f64().to_bits()),
            });
        }
        assert_eq!(decoded, expected);
        assert!(cursor.is_empty(), "codec must consume exactly what it wrote");
    }
}

/// Arbitrary mutations of valid frames never panic the parser and always
/// classify as accepted or malformed; an unmutated frame must round-trip.
#[test]
fn mutated_frames_never_panic_and_classify() {
    let mut rng = Xoshiro256::new(0xf422);
    for iter in 0..4000 {
        let payload_len = rng.next_range(65) as usize;
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.next_u64() as u8).collect();
        let node = rng.next_u64() as u32;
        let mut frame = encode_frame(node, &payload);

        let mutations = rng.next_range(5);
        for _ in 0..mutations {
            match rng.next_range(4) {
                // Flip a random byte.
                0 if !frame.is_empty() => {
                    let i = rng.next_range(frame.len() as u64) as usize;
                    frame[i] ^= (rng.next_u64() as u8) | 1;
                }
                // Truncate the tail.
                1 if !frame.is_empty() => {
                    let keep = rng.next_range(frame.len() as u64) as usize;
                    frame.truncate(keep);
                }
                // Append junk.
                2 => {
                    let extra = rng.next_range(9) + 1;
                    frame.extend((0..extra).map(|_| rng.next_u64() as u8));
                }
                // Drop a prefix.
                _ if !frame.is_empty() => {
                    let drop = rng.next_range(frame.len() as u64) as usize;
                    frame.drain(..drop);
                }
                _ => {}
            }
        }

        // The contract under test: no panic, and a total classification.
        let parsed = parse_frame(&frame);
        if mutations == 0 {
            let (id, body) = parsed.expect("unmutated frame must parse");
            assert_eq!(id, node, "iter {iter}");
            assert_eq!(body, payload, "iter {iter}");
        }
        // `parsed` is Some (accepted) or None (malformed): exactly one
        // bucket, by construction — the assertion is that we got here.
    }
}

/// Every datagram put on the wire — valid, garbage, or oversized — is
/// drained and lands in exactly one classification bucket.
#[test]
fn socket_drain_classifies_every_datagram_exactly_once() {
    let rx = UdpEndpoint::bind(1, "127.0.0.1:0").unwrap();
    let dest = rx.local_addr().unwrap();
    let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut rng = Xoshiro256::new(0x50c);

    let mut sent_valid = 0u64;
    let mut sent_garbage = 0u64;
    let mut sent_oversized = 0u64;
    const TOTAL: u64 = 60;
    for _ in 0..TOTAL {
        match rng.next_range(3) {
            0 => {
                let payload: Vec<u8> =
                    (0..rng.next_range(32)).map(|_| rng.next_u64() as u8).collect();
                raw.send_to(&encode_frame(7, &payload), dest).unwrap();
                sent_valid += 1;
            }
            1 => {
                // Garbage that still fits the buffer.
                let junk: Vec<u8> =
                    (0..rng.next_range(64) + 1).map(|_| rng.next_u64() as u8).collect();
                // Avoid accidentally forging a valid frame: break the magic.
                let mut junk = junk;
                if junk.len() >= 2 {
                    junk[0] = 0x00;
                }
                raw.send_to(&junk, dest).unwrap();
                sent_garbage += 1;
            }
            _ => {
                let big = vec![0x11u8; HEADER_LEN + MAX_PAYLOAD + 50];
                raw.send_to(&big, dest).unwrap();
                sent_oversized += 1;
            }
        }
    }

    let (mut frames, mut malformed, mut truncated) = (0u64, 0u64, 0u64);
    let deadline = Instant::now() + Duration::from_secs(5);
    while frames + malformed + truncated < TOTAL && Instant::now() < deadline {
        match rx.poll_recv().unwrap() {
            Recv::Frame { sender, .. } => {
                assert_eq!(sender, 7);
                frames += 1;
            }
            Recv::Malformed { .. } => malformed += 1,
            Recv::Truncated { .. } => truncated += 1,
            Recv::Empty => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Loopback UDP can in principle drop under buffer pressure; with 60
    // small datagrams it does not, and the classification must be exact.
    assert_eq!(frames, sent_valid);
    assert_eq!(malformed, sent_garbage);
    assert_eq!(truncated, sent_oversized);
}
