//! Per-node bandwidth accounting.
//!
//! "Most broadband connections are asymmetric, with upload bandwidth being
//! the limitation" — the scalability experiments report per-node upload
//! and download in kbps, which this meter accumulates.

/// Accumulates bytes sent and received by one node over simulated time.
///
/// # Examples
///
/// ```
/// use watchmen_net::BandwidthMeter;
///
/// let mut m = BandwidthMeter::new();
/// m.record_up(125); // 125 bytes = 1000 bits
/// assert_eq!(m.up_kbps(1000.0), 1.0); // over one second
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BandwidthMeter {
    up_bytes: u64,
    down_bytes: u64,
    up_msgs: u64,
    down_msgs: u64,
}

impl BandwidthMeter {
    /// Creates a zeroed meter.
    #[must_use]
    pub fn new() -> Self {
        BandwidthMeter::default()
    }

    /// Records an outgoing message of `bytes`.
    pub fn record_up(&mut self, bytes: usize) {
        self.up_bytes += bytes as u64;
        self.up_msgs += 1;
    }

    /// Records an incoming message of `bytes`.
    pub fn record_down(&mut self, bytes: usize) {
        self.down_bytes += bytes as u64;
        self.down_msgs += 1;
    }

    /// Total bytes sent.
    #[must_use]
    pub fn up_bytes(&self) -> u64 {
        self.up_bytes
    }

    /// Total bytes received.
    #[must_use]
    pub fn down_bytes(&self) -> u64 {
        self.down_bytes
    }

    /// Messages sent.
    #[must_use]
    pub fn up_messages(&self) -> u64 {
        self.up_msgs
    }

    /// Messages received.
    #[must_use]
    pub fn down_messages(&self) -> u64 {
        self.down_msgs
    }

    /// Average upload rate in kilobits/s over `elapsed_ms`.
    ///
    /// Returns `0.0` if no time has elapsed.
    #[must_use]
    pub fn up_kbps(&self, elapsed_ms: f64) -> f64 {
        kbps(self.up_bytes, elapsed_ms)
    }

    /// Average download rate in kilobits/s over `elapsed_ms`.
    #[must_use]
    pub fn down_kbps(&self, elapsed_ms: f64) -> f64 {
        kbps(self.down_bytes, elapsed_ms)
    }

    /// Adds another meter's counts into this one.
    pub fn merge(&mut self, other: &BandwidthMeter) {
        self.up_bytes += other.up_bytes;
        self.down_bytes += other.down_bytes;
        self.up_msgs += other.up_msgs;
        self.down_msgs += other.down_msgs;
    }
}

fn kbps(bytes: u64, elapsed_ms: f64) -> f64 {
    if elapsed_ms <= 0.0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / elapsed_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute() {
        let mut m = BandwidthMeter::new();
        m.record_up(1000);
        m.record_down(500);
        // 8000 bits over 2 s = 4 kbps up.
        assert_eq!(m.up_kbps(2000.0), 4.0);
        assert_eq!(m.down_kbps(2000.0), 2.0);
        assert_eq!(m.up_messages(), 1);
        assert_eq!(m.down_messages(), 1);
    }

    #[test]
    fn zero_elapsed_is_zero_rate() {
        let mut m = BandwidthMeter::new();
        m.record_up(100);
        assert_eq!(m.up_kbps(0.0), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BandwidthMeter::new();
        a.record_up(10);
        let mut b = BandwidthMeter::new();
        b.record_up(20);
        b.record_down(5);
        a.merge(&b);
        assert_eq!(a.up_bytes(), 30);
        assert_eq!(a.down_bytes(), 5);
        assert_eq!(a.up_messages(), 2);
    }
}
