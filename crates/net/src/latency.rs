//! Pairwise latency models.
//!
//! The paper drew end-to-end latencies from the King and PeerWise
//! measurement datasets, "filtered using a Geo-IP location dataset that
//! limits the locations of IP addresses to the United States (with mean
//! latencies of 62 and 68 ms respectively)". Those datasets are not
//! redistributable here, so [`king_like`] and [`peerwise_like`] synthesize
//! seeded pairwise matrices with the same means and a log-normal
//! dispersion typical of wide-area RTT measurements; the experiment
//! (Figure 7) depends only on the distribution's location and shape
//! relative to the 50 ms frame.

use watchmen_crypto::rng::Xoshiro256;

/// A source of one-way network delays between node pairs.
///
/// Implementations may be stochastic; they carry their own deterministic
/// generators so simulations reproduce exactly.
pub trait LatencyModel: std::fmt::Debug + Send {
    /// Samples the one-way delay in milliseconds for a packet from `from`
    /// to `to`.
    fn sample_ms(&mut self, from: usize, to: usize) -> f64;

    /// A short human-readable name for experiment reports.
    fn name(&self) -> &str;
}

/// A constant delay for every packet.
#[derive(Debug, Clone)]
pub struct Constant {
    delay_ms: f64,
}

impl LatencyModel for Constant {
    fn sample_ms(&mut self, _from: usize, _to: usize) -> f64 {
        self.delay_ms
    }

    fn name(&self) -> &str {
        "constant"
    }
}

/// Creates a constant-delay model.
///
/// # Panics
///
/// Panics if `delay_ms` is negative or not finite.
#[must_use]
pub fn constant(delay_ms: f64) -> Box<dyn LatencyModel> {
    assert!(delay_ms.is_finite() && delay_ms >= 0.0);
    Box::new(Constant { delay_ms })
}

/// Uniform random delay in `[lo, hi)` per packet.
#[derive(Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
    rng: Xoshiro256,
}

impl LatencyModel for Uniform {
    fn sample_ms(&mut self, _from: usize, _to: usize) -> f64 {
        self.lo + (self.hi - self.lo) * self.rng.next_f64()
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Creates a uniform-delay model.
///
/// # Panics
///
/// Panics if the range is invalid or negative.
#[must_use]
pub fn uniform(lo: f64, hi: f64, seed: u64) -> Box<dyn LatencyModel> {
    assert!(lo >= 0.0 && hi >= lo, "invalid range [{lo}, {hi})");
    Box::new(Uniform { lo, hi, rng: Xoshiro256::seed_from(seed, 0x0a7) })
}

/// A symmetric pairwise base-latency matrix with per-packet jitter: the
/// synthetic stand-in for the King / PeerWise datasets.
#[derive(Debug)]
pub struct Matrix {
    name: String,
    n: usize,
    /// Upper-triangular base delays, row-major over `i < j`.
    base: Vec<f64>,
    /// Relative jitter amplitude (e.g. `0.1` = ±10 % per packet).
    jitter: f64,
    rng: Xoshiro256,
}

impl Matrix {
    /// Builds a matrix of log-normal pairwise base delays with the given
    /// mean and log-space sigma.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or parameters are non-positive.
    #[must_use]
    pub fn log_normal(
        name: &str,
        n: usize,
        mean_ms: f64,
        sigma: f64,
        jitter: f64,
        seed: u64,
    ) -> Self {
        assert!(n >= 2, "need at least 2 nodes");
        assert!(mean_ms > 0.0 && sigma > 0.0 && jitter >= 0.0);
        let mut rng = Xoshiro256::seed_from(seed, 0x1a7e);
        // mean of lognormal = exp(mu + sigma^2/2)  ⇒  mu = ln(mean) - sigma^2/2
        let mu = mean_ms.ln() - sigma * sigma / 2.0;
        let pairs = n * (n - 1) / 2;
        let base = (0..pairs)
            .map(|_| {
                // Box–Muller standard normal.
                let u1 = rng.next_f64().max(1e-12);
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp()
            })
            .collect();
        Matrix { name: name.to_owned(), n, base, jitter, rng }
    }

    /// The base (jitter-free) delay between a pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `from == to`.
    #[must_use]
    pub fn base_ms(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n && from != to, "invalid pair {from}→{to}");
        let (i, j) = if from < to { (from, to) } else { (to, from) };
        // Index into the upper triangle.
        let idx = i * self.n - i * (i + 1) / 2 + (j - i - 1);
        self.base[idx]
    }

    /// Mean of all pairwise base delays.
    #[must_use]
    pub fn mean_base_ms(&self) -> f64 {
        self.base.iter().sum::<f64>() / self.base.len() as f64
    }
}

impl LatencyModel for Matrix {
    fn sample_ms(&mut self, from: usize, to: usize) -> f64 {
        let base = self.base_ms(from, to);
        let j = 1.0 + self.jitter * (2.0 * self.rng.next_f64() - 1.0);
        (base * j).max(0.1)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A King-dataset-like matrix. The dataset's 62 ms mean is a *round-trip*
/// estimate (King measures RTTs via DNS), so one-way samples use a 31 ms
/// mean with moderate dispersion and ±10 % per-packet jitter.
#[must_use]
pub fn king_like(n: usize, seed: u64) -> Box<dyn LatencyModel> {
    Box::new(Matrix::log_normal("king-like", n, 31.0, 0.45, 0.10, seed))
}

/// A PeerWise-dataset-like matrix: 68 ms mean RTT → 34 ms one-way, with
/// slightly wider dispersion and ±10 % per-packet jitter.
#[must_use]
pub fn peerwise_like(n: usize, seed: u64) -> Box<dyn LatencyModel> {
    Box::new(Matrix::log_normal("peerwise-like", n, 34.0, 0.55, 0.10, seed))
}

/// A LAN-like model: 1–3 ms uniform.
#[must_use]
pub fn lan(seed: u64) -> Box<dyn LatencyModel> {
    uniform(1.0, 3.0, seed)
}

/// A two-zone model: nodes split into two "continents"; intra-zone pairs
/// get the fast matrix, cross-zone pairs a large extra one-way delay.
///
/// The paper notes that "games limit the geographic location of players to
/// the same country or continent" to meet the 150 ms budget; this model
/// quantifies what happens when that assumption breaks.
#[derive(Debug)]
pub struct TwoZone {
    intra: Matrix,
    /// Nodes with index < `split` are zone A, the rest zone B.
    split: usize,
    /// Extra one-way delay for cross-zone pairs (ms).
    cross_penalty_ms: f64,
}

impl LatencyModel for TwoZone {
    fn sample_ms(&mut self, from: usize, to: usize) -> f64 {
        let base = self.intra.sample_ms(from, to);
        if (from < self.split) == (to < self.split) {
            base
        } else {
            base + self.cross_penalty_ms
        }
    }

    fn name(&self) -> &str {
        "two-zone"
    }
}

/// Creates a two-zone model: the first `split` nodes on one continent, the
/// rest on another, with `cross_penalty_ms` added one-way across zones
/// (e.g. ~70 ms for a transatlantic hop).
///
/// # Panics
///
/// Panics if `split` is 0 or ≥ `n`, or the penalty is negative.
#[must_use]
pub fn two_zone(n: usize, split: usize, cross_penalty_ms: f64, seed: u64) -> Box<dyn LatencyModel> {
    assert!(split > 0 && split < n, "split {split} out of range for {n} nodes");
    assert!(cross_penalty_ms >= 0.0);
    Box::new(TwoZone {
        intra: Matrix::log_normal("two-zone", n, 31.0, 0.45, 0.10, seed),
        split,
        cross_penalty_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut m = constant(25.0);
        assert_eq!(m.sample_ms(0, 1), 25.0);
        assert_eq!(m.sample_ms(3, 2), 25.0);
        assert_eq!(m.name(), "constant");
    }

    #[test]
    fn uniform_in_range() {
        let mut m = uniform(10.0, 20.0, 1);
        for _ in 0..200 {
            let s = m.sample_ms(0, 1);
            assert!((10.0..20.0).contains(&s));
        }
    }

    #[test]
    fn matrix_is_symmetric_and_positive() {
        let m = Matrix::log_normal("t", 10, 62.0, 0.45, 0.1, 7);
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert_eq!(m.base_ms(i, j), m.base_ms(j, i));
                    assert!(m.base_ms(i, j) > 0.0);
                }
            }
        }
    }

    #[test]
    fn king_like_mean_near_62() {
        let m = Matrix::log_normal("king-like", 48, 62.0, 0.45, 0.1, 42);
        let mean = m.mean_base_ms();
        assert!((mean - 62.0).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn peerwise_like_mean_near_68() {
        let m = Matrix::log_normal("peerwise-like", 48, 68.0, 0.55, 0.1, 42);
        let mean = m.mean_base_ms();
        assert!((mean - 68.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn jitter_varies_per_packet() {
        let mut m = Matrix::log_normal("t", 4, 62.0, 0.45, 0.1, 3);
        let a = m.sample_ms(0, 1);
        let b = m.sample_ms(0, 1);
        assert_ne!(a, b);
        // Jitter stays within ±10 % of base.
        let base = m.base_ms(0, 1);
        for _ in 0..100 {
            let s = m.sample_ms(0, 1);
            assert!(s >= base * 0.899 && s <= base * 1.101, "{s} vs base {base}");
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Matrix::log_normal("t", 8, 62.0, 0.45, 0.1, 9);
        let mut b = Matrix::log_normal("t", 8, 62.0, 0.45, 0.1, 9);
        for _ in 0..32 {
            assert_eq!(a.sample_ms(1, 5), b.sample_ms(1, 5));
        }
    }

    #[test]
    fn two_zone_penalizes_cross_pairs() {
        let mut m = two_zone(8, 4, 70.0, 3);
        let mut intra = 0.0;
        let mut cross = 0.0;
        for _ in 0..50 {
            intra += m.sample_ms(0, 1) + m.sample_ms(5, 6);
            cross += m.sample_ms(0, 5) + m.sample_ms(6, 1);
        }
        assert!(cross / 2.0 > intra / 2.0 + 60.0 * 50.0, "cross {cross} intra {intra}");
        assert_eq!(m.name(), "two-zone");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn two_zone_bad_split_panics() {
        let _ = two_zone(4, 4, 70.0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid pair")]
    fn self_pair_panics() {
        let m = Matrix::log_normal("t", 4, 62.0, 0.45, 0.1, 3);
        let _ = m.base_ms(2, 2);
    }
}
