//! The in-process discrete-event network simulator.

use std::sync::Arc;

use watchmen_crypto::rng::Xoshiro256;
use watchmen_telemetry::trace::{EventKind, Phase, TraceEvent, TraceId};
use watchmen_telemetry::{Counter, FlightRecorder, Gauge, Histogram};

use crate::fault::FaultPlan;
use crate::latency::LatencyModel;
use crate::{BandwidthMeter, EventQueue};

/// Index of a node (player machine) in the simulated network.
pub type NodeId = usize;

/// A message delivered by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<T> {
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Virtual time the message was sent (ms).
    pub sent_ms: f64,
    /// Virtual time the message arrived (ms).
    pub deliver_ms: f64,
    /// The payload.
    pub payload: T,
    /// Wire size used for bandwidth accounting.
    pub bytes: usize,
    /// Causal trace id supplied via [`SimNetwork::send_traced`]
    /// ([`TraceId::NONE`] for untraced sends).
    pub trace: TraceId,
}

/// Aggregate traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages submitted to the network.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped by the loss model, a fault plan, or delivery to a
    /// crashed node.
    pub dropped: u64,
    /// Extra copies injected by the duplication fault. Each copy also ends
    /// up delivered, dropped, or in flight, so it appears on the
    /// right-hand side of the conservation identity too.
    pub duplicated: u64,
    /// Messages accepted but not yet delivered.
    pub in_flight: u64,
}

impl NetStats {
    /// Conservation invariant: every submitted message — plus every extra
    /// copy the duplication fault injected — is delivered, dropped, or
    /// still queued; nothing is lost or double-counted.
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        self.sent + self.duplicated == self.delivered + self.dropped + self.in_flight
    }

    /// Like [`NetStats::invariant_holds`], but a failure carries the
    /// offending counts so the report is actionable.
    ///
    /// # Errors
    ///
    /// Returns the full accounting (`sent` vs `delivered + dropped +
    /// in_flight`, with each term) when conservation is violated.
    pub fn check_invariant(&self) -> Result<(), String> {
        if self.invariant_holds() {
            return Ok(());
        }
        Err(format!(
            "message conservation violated: sent={} + duplicated={} != delivered={} + \
             dropped={} + in_flight={} (= {}, off by {})",
            self.sent,
            self.duplicated,
            self.delivered,
            self.dropped,
            self.in_flight,
            self.delivered + self.dropped + self.in_flight,
            (self.sent + self.duplicated) as i128
                - (self.delivered + self.dropped + self.in_flight) as i128,
        ))
    }

    /// Asserts conservation, panicking with the offending counts and the
    /// caller's context instead of a bare boolean failure.
    ///
    /// # Panics
    ///
    /// Panics with the full accounting when the invariant is violated.
    pub fn assert_invariant(&self, context: &str) {
        if let Err(report) = self.check_invariant() {
            panic!("{context}: {report}");
        }
    }
}

/// Cached global-registry handles for the simulator's hot paths.
#[derive(Debug)]
struct SimNetMetrics {
    sent: Arc<Counter>,
    delivered: Arc<Counter>,
    dropped: Arc<Counter>,
    duplicated: Arc<Counter>,
    fault_dropped: Arc<Counter>,
    in_flight: Arc<Gauge>,
    latency_ms: Arc<Histogram>,
}

impl SimNetMetrics {
    fn new() -> Self {
        let t = watchmen_telemetry::global();
        t.describe("net_messages_sent_total", "messages submitted to the simulated network");
        t.describe("net_messages_delivered_total", "messages delivered by the simulated network");
        t.describe(
            "net_messages_dropped_total",
            "messages dropped by the loss model, a fault plan, or a crashed receiver",
        );
        t.describe(
            "net_messages_duplicated_total",
            "extra message copies injected by the duplication fault",
        );
        t.describe(
            "net_fault_drops_total",
            "messages dropped specifically by the fault plan (burst loss, crash, partition)",
        );
        t.describe("net_messages_in_flight", "messages queued but not yet delivered");
        t.describe("net_delivery_latency_ms", "virtual send-to-deliver latency");
        SimNetMetrics {
            sent: t.counter("net_messages_sent_total"),
            delivered: t.counter("net_messages_delivered_total"),
            dropped: t.counter("net_messages_dropped_total"),
            duplicated: t.counter("net_messages_duplicated_total"),
            fault_dropped: t.counter("net_fault_drops_total"),
            in_flight: t.gauge("net_messages_in_flight"),
            latency_ms: t.histogram("net_delivery_latency_ms"),
        }
    }
}

/// A virtual-time network connecting `n` nodes with a pluggable latency
/// model and Bernoulli loss, as in the paper's replay experiments
/// ("Message loss is simulated with a rate of 1%").
///
/// Time only moves forward via [`SimNetwork::advance_to`]; all state is
/// deterministic for a fixed seed.
///
/// # Examples
///
/// ```
/// use watchmen_net::{latency, SimNetwork};
///
/// let mut net: SimNetwork<u32> = SimNetwork::new(2, latency::constant(5.0), 0.0, 1);
/// net.send(0, 1, 99, 70);
/// assert!(net.advance_to(4.9).is_empty());
/// let got = net.advance_to(5.1);
/// assert_eq!(got[0].payload, 99);
/// ```
#[derive(Debug)]
pub struct SimNetwork<T> {
    n: usize,
    now_ms: f64,
    queue: EventQueue<Delivery<T>>,
    latency: Box<dyn LatencyModel>,
    loss_rate: f64,
    rng: Xoshiro256,
    meters: Vec<BandwidthMeter>,
    stats: NetStats,
    metrics: SimNetMetrics,
    /// Optional flight recorder for per-message delivery events.
    recorder: Option<Arc<FlightRecorder>>,
    /// Optional fault plan layered on top of the Bernoulli loss model.
    faults: Option<FaultPlan>,
}

impl<T> SimNetwork<T> {
    /// Creates a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `loss_rate` is outside `[0, 1]`.
    #[must_use]
    pub fn new(n: usize, latency: Box<dyn LatencyModel>, loss_rate: f64, seed: u64) -> Self {
        assert!(n > 0, "network needs at least one node");
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate {loss_rate} out of range");
        SimNetwork {
            n,
            now_ms: 0.0,
            queue: EventQueue::new(),
            latency,
            loss_rate,
            rng: Xoshiro256::seed_from(seed, 0x10c0),
            meters: vec![BandwidthMeter::new(); n],
            stats: NetStats::default(),
            metrics: SimNetMetrics::new(),
            recorder: None,
            faults: None,
        }
    }

    /// Attaches a [`FaultPlan`] layered on top of the base Bernoulli loss:
    /// burst loss, duplication, reordering, crash and partition windows
    /// all draw from the plan's own deterministic RNG stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The attached fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Returns `true` if the fault plan declares `node` crashed at the
    /// current virtual time — drivers use this to skip executing a
    /// crashed node's frame, mirroring how the network already silences
    /// its traffic.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_crashed(node, self.now_ms))
    }

    /// Returns `true` if a scripted churn event gates `node` right now —
    /// a joiner before its join instant, a leaver after it unplugs.
    /// Drivers use this to skip executing the node's frame; the network
    /// independently drops its traffic.
    #[must_use]
    pub fn is_offline(&self, node: NodeId) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_offline(node, self.now_ms))
    }

    /// Attaches a flight recorder: every submit, drop and delivery is
    /// recorded as a [`Phase::NetFlush`] event (the event's `frame` field
    /// carries the virtual millisecond, rounded down).
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    fn record_net_event(
        &self,
        kind: EventKind,
        label: &'static str,
        trace: TraceId,
        node: u32,
        peer: u32,
        bytes: i64,
    ) {
        if let Some(rec) = &self.recorder {
            rec.record(TraceEvent::point(
                trace,
                node,
                peer,
                self.now_ms as u64,
                Phase::NetFlush,
                kind,
                label,
                bytes,
            ));
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Current virtual time in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Aggregate counters, including the current in-flight queue depth.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        NetStats { in_flight: self.queue.len() as u64, ..self.stats }
    }

    /// One node's bandwidth meter.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn meter(&self, node: NodeId) -> &BandwidthMeter {
        &self.meters[node]
    }

    /// The latency model's display name.
    #[must_use]
    pub fn latency_name(&self) -> &str {
        self.latency.name()
    }

    /// Submits a message of `bytes` from `from` to `to` at the current
    /// virtual time. Upload bandwidth is charged even if the loss model
    /// later drops the packet (the bits still left the uplink).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: T, bytes: usize)
    where
        T: Clone,
    {
        self.send_traced(from, to, payload, bytes, TraceId::NONE);
    }

    /// Like [`SimNetwork::send`], carrying a causal trace id that travels
    /// with the delivery and tags the attached flight recorder's submit /
    /// drop / deliver events.
    ///
    /// The attached [`FaultPlan`], if any, runs after the base Bernoulli
    /// loss check: a crashed endpoint or open partition silences the
    /// message, the burst channel may drop it, the reorder fault may add
    /// extra delay, and the duplication fault may enqueue a second copy
    /// with its own latency sample (hence the `T: Clone` bound).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `from == to`.
    pub fn send_traced(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: T,
        bytes: usize,
        trace: TraceId,
    ) where
        T: Clone,
    {
        assert!(from < self.n && to < self.n, "node out of range");
        assert_ne!(from, to, "no self-sends; local delivery is free");
        self.stats.sent += 1;
        self.metrics.sent.inc();
        self.meters[from].record_up(bytes);
        self.record_net_event(
            EventKind::Send,
            "simnet",
            trace,
            from as u32,
            to as u32,
            bytes as i64,
        );
        let now = self.now_ms;
        let fault_drop = match self.faults.as_mut() {
            Some(plan) => {
                plan.is_crashed(from, now)
                    || plan.is_crashed(to, now)
                    || plan.is_offline(from, now)
                    || plan.is_offline(to, now)
                    || plan.severs(from, to, now)
                    || plan.burst_drop()
            }
            None => false,
        };
        if fault_drop {
            self.stats.dropped += 1;
            self.metrics.dropped.inc();
            self.metrics.fault_dropped.inc();
            self.record_net_event(
                EventKind::Drop,
                "simnet-fault",
                trace,
                from as u32,
                to as u32,
                bytes as i64,
            );
            return;
        }
        if self.rng.next_bool(self.loss_rate) {
            self.stats.dropped += 1;
            self.metrics.dropped.inc();
            self.record_net_event(
                EventKind::Drop,
                "simnet",
                trace,
                from as u32,
                to as u32,
                bytes as i64,
            );
            return;
        }
        let mut copies = 1u32;
        if let Some(plan) = self.faults.as_mut() {
            if plan.duplicate() {
                copies = 2;
                self.stats.duplicated += 1;
                self.metrics.duplicated.inc();
            }
        }
        for copy in 0..copies {
            let mut delay = self.latency.sample_ms(from, to);
            if let Some(plan) = self.faults.as_mut() {
                delay += plan.reorder_extra();
            }
            let deliver_ms = now + delay;
            self.queue.push(
                deliver_ms,
                Delivery {
                    from,
                    to,
                    sent_ms: now,
                    deliver_ms,
                    payload: payload.clone(),
                    bytes,
                    trace,
                },
            );
            if copy > 0 {
                self.record_net_event(
                    EventKind::Send,
                    "simnet-dup",
                    trace,
                    from as u32,
                    to as u32,
                    bytes as i64,
                );
            }
        }
        self.metrics.in_flight.set(self.queue.len() as i64);
    }

    /// Advances virtual time to `t_ms`, returning every message delivered
    /// on the way, in delivery order.
    ///
    /// # Panics
    ///
    /// Panics if `t_ms` would move time backwards.
    pub fn advance_to(&mut self, t_ms: f64) -> Vec<Delivery<T>> {
        assert!(t_ms >= self.now_ms, "time cannot go backwards ({t_ms} < {})", self.now_ms);
        self.now_ms = t_ms;
        let delivered = self.queue.drain_until(t_ms);
        let mut out = Vec::with_capacity(delivered.len());
        for (_, d) in delivered {
            // A receiver that crashed (or unplugged via a scripted churn
            // event) after the message was accepted eats it at delivery
            // time: in-flight moves to dropped, never to delivered, and
            // no download bandwidth is charged.
            if self.faults.as_ref().is_some_and(|f| {
                f.is_crashed(d.to, d.deliver_ms) || f.is_offline(d.to, d.deliver_ms)
            }) {
                self.stats.dropped += 1;
                self.metrics.dropped.inc();
                self.metrics.fault_dropped.inc();
                self.record_net_event(
                    EventKind::Drop,
                    "simnet-crashed-receiver",
                    d.trace,
                    d.to as u32,
                    d.from as u32,
                    d.bytes as i64,
                );
                continue;
            }
            self.meters[d.to].record_down(d.bytes);
            self.stats.delivered += 1;
            self.metrics.delivered.inc();
            self.metrics.latency_ms.record(d.deliver_ms - d.sent_ms);
            self.record_net_event(
                EventKind::Deliver,
                "simnet",
                d.trace,
                d.to as u32,
                d.from as u32,
                d.bytes as i64,
            );
            out.push(d);
        }
        self.metrics.in_flight.set(self.queue.len() as i64);
        // Conservation must hold at every quiescent point; a violation
        // here panics with the offending counts rather than corrupting
        // downstream bandwidth figures silently.
        self.stats().assert_invariant("simnet advance_to");
        out
    }

    /// Messages still in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// The virtual time of the next pending delivery, if any — lets
    /// drivers advance event-by-event and react (e.g. forward) at the
    /// exact delivery instant.
    #[must_use]
    pub fn next_delivery_ms(&self) -> Option<f64> {
        self.queue.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency;

    #[test]
    fn delivery_timing() {
        let mut net: SimNetwork<u8> = SimNetwork::new(3, latency::constant(10.0), 0.0, 1);
        net.send(0, 1, 1, 100);
        net.advance_to(5.0);
        net.send(0, 2, 2, 100);
        let batch = net.advance_to(16.0);
        // First message at t=10, second at t=15.
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].payload, 1);
        assert_eq!(batch[0].deliver_ms, 10.0);
        assert_eq!(batch[1].payload, 2);
        assert_eq!(batch[1].deliver_ms, 15.0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn loss_rate_one_drops_everything() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 1.0, 2);
        for _ in 0..50 {
            net.send(0, 1, 0, 10);
        }
        assert!(net.advance_to(100.0).is_empty());
        assert_eq!(net.stats().dropped, 50);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn loss_rate_statistics() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 0.1, 3);
        for _ in 0..5000 {
            net.send(0, 1, 0, 10);
        }
        net.advance_to(10.0);
        let dropped = net.stats().dropped;
        assert!((350..650).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn bandwidth_charged_correctly() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 0.0, 4);
        net.send(0, 1, 0, 250);
        net.send(0, 1, 0, 250);
        net.advance_to(10.0);
        assert_eq!(net.meter(0).up_bytes(), 500);
        assert_eq!(net.meter(1).down_bytes(), 500);
        assert_eq!(net.meter(0).down_bytes(), 0);
    }

    #[test]
    fn upload_charged_even_on_drop() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 1.0, 5);
        net.send(0, 1, 0, 100);
        net.advance_to(10.0);
        assert_eq!(net.meter(0).up_bytes(), 100);
        assert_eq!(net.meter(1).down_bytes(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let run = |seed| {
            let mut net: SimNetwork<u32> =
                SimNetwork::new(8, latency::king_like(8, seed), 0.01, seed);
            for i in 0..100u32 {
                net.send((i % 8) as usize, ((i + 1) % 8) as usize, i, 90);
            }
            net.advance_to(500.0)
                .into_iter()
                .map(|d| (d.payload, d.deliver_ms.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn conservation_invariant_holds_throughout_a_run() {
        // sent == delivered + dropped + in_flight at every observation
        // point, under loss and with messages still queued.
        let mut net: SimNetwork<u32> = SimNetwork::new(6, latency::king_like(6, 11), 0.05, 11);
        let mut rng = Xoshiro256::new(99);
        for step in 0..200u32 {
            let from = rng.next_range(6) as usize;
            let mut to = rng.next_range(6) as usize;
            if to == from {
                to = (to + 1) % 6;
            }
            net.send(from, to, step, 80);
            if step % 7 == 0 {
                net.advance_to(f64::from(step));
            }
            net.stats().assert_invariant("mid-run");
        }
        // Drain completely: in_flight reaches zero and the identity still
        // balances on final totals.
        net.advance_to(10_000.0);
        let s = net.stats();
        assert_eq!(s.in_flight, 0);
        s.assert_invariant("final");
        assert_eq!(s.sent, 200);
    }

    #[test]
    fn conservation_holds_on_a_deliberately_lossy_network() {
        // 40% Bernoulli loss: a large dropped count must still balance
        // against sent at every checkpoint and after the final drain.
        let mut net: SimNetwork<u32> = SimNetwork::new(4, latency::king_like(4, 21), 0.4, 21);
        for step in 0..500u32 {
            net.send((step % 4) as usize, ((step + 1) % 4) as usize, step, 90);
            if step % 13 == 0 {
                net.advance_to(f64::from(step) * 0.5);
                net.stats().assert_invariant("lossy checkpoint");
            }
        }
        net.advance_to(50_000.0);
        let s = net.stats();
        s.assert_invariant("lossy final");
        assert_eq!(s.in_flight, 0);
        assert!(s.dropped > 100, "expected heavy loss, got {}", s.dropped);
        assert_eq!(s.sent, 500);
        assert_eq!(s.delivered + s.dropped, 500);
    }

    #[test]
    fn invariant_failure_reports_the_offending_counts() {
        let bad = NetStats { sent: 100, delivered: 60, dropped: 10, in_flight: 20, duplicated: 0 };
        let report = bad.check_invariant().unwrap_err();
        assert!(report.contains("sent=100"), "{report}");
        assert!(report.contains("duplicated=0"), "{report}");
        assert!(report.contains("delivered=60"), "{report}");
        assert!(report.contains("dropped=10"), "{report}");
        assert!(report.contains("in_flight=20"), "{report}");
        assert!(report.contains("off by 10"), "{report}");
        assert!(NetStats { sent: 1, delivered: 1, ..NetStats::default() }
            .check_invariant()
            .is_ok());
    }

    #[test]
    fn invariant_balances_duplicates_explicitly() {
        // A duplicated message yields two deliveries from one send: the
        // identity only balances because `duplicated` appears on the left.
        let two_for_one =
            NetStats { sent: 10, delivered: 12, dropped: 0, in_flight: 0, duplicated: 2 };
        assert!(two_for_one.invariant_holds());
        // Forgetting the term (the old invariant) must fail loudly.
        let forgotten =
            NetStats { sent: 10, delivered: 12, dropped: 0, in_flight: 0, duplicated: 0 };
        assert!(!forgotten.invariant_holds());
        assert!(forgotten.check_invariant().unwrap_err().contains("off by -2"));
    }

    #[test]
    #[should_panic(expected = "sent=5 + duplicated=0 != delivered=1 + dropped=1 + in_flight=1")]
    fn assert_invariant_panics_with_counts() {
        NetStats { sent: 5, delivered: 1, dropped: 1, in_flight: 1, duplicated: 0 }
            .assert_invariant("unit test");
    }

    #[test]
    fn attached_recorder_sees_send_drop_and_deliver() {
        use watchmen_telemetry::trace::{EventKind, TraceId};
        use watchmen_telemetry::FlightRecorder;
        let rec = Arc::new(FlightRecorder::new(256));
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 0.5, 77);
        net.attach_recorder(Arc::clone(&rec));
        let id = TraceId::from_origin_seq(0, 1);
        for _ in 0..40 {
            net.send_traced(0, 1, 7, 90, id);
        }
        net.advance_to(100.0);
        let events = rec.snapshot();
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::Send), 40);
        assert!(count(EventKind::Drop) > 0, "50% loss produced no drops");
        assert!(count(EventKind::Deliver) > 0, "nothing delivered");
        assert_eq!(count(EventKind::Drop) + count(EventKind::Deliver), 40);
        assert!(events.iter().all(|e| e.trace_id == id));
    }

    #[test]
    fn telemetry_mirrors_sim_counters() {
        let before = watchmen_telemetry::global().snapshot();
        let base = |name: &str| match before.get(name) {
            Some(watchmen_telemetry::MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        let (sent0, dropped0) =
            (base("net_messages_sent_total"), base("net_messages_dropped_total"));
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 1.0, 13);
        for _ in 0..25 {
            net.send(0, 1, 0, 10);
        }
        let after = watchmen_telemetry::global().snapshot();
        let read = |name: &str| match after.get(name) {
            Some(watchmen_telemetry::MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        assert!(read("net_messages_sent_total") >= sent0 + 25);
        assert!(read("net_messages_dropped_total") >= dropped0 + 25);
    }

    #[test]
    fn duplication_fault_delivers_extra_copies_and_balances() {
        use crate::fault::FaultPlan;
        let mut net: SimNetwork<u32> = SimNetwork::new(2, latency::constant(5.0), 0.0, 31);
        net.set_fault_plan(FaultPlan::new(31).with_duplication(1.0));
        for i in 0..20u32 {
            net.send(0, 1, i, 50);
        }
        let got = net.advance_to(100.0);
        let s = net.stats();
        assert_eq!(s.sent, 20);
        assert_eq!(s.duplicated, 20, "rate-1.0 duplication must copy every message");
        assert_eq!(s.delivered, 40);
        assert_eq!(got.len(), 40);
        s.assert_invariant("full duplication");
    }

    #[test]
    fn crash_window_silences_sends_and_eats_deliveries() {
        use crate::fault::FaultPlan;
        let mut net: SimNetwork<u8> = SimNetwork::new(3, latency::constant(10.0), 0.0, 32);
        net.set_fault_plan(FaultPlan::new(32).with_crash(1, 20.0, 50.0));
        // In flight before the crash, delivered into the window: dropped
        // at delivery time.
        net.advance_to(15.0);
        net.send(0, 1, 1, 40);
        assert!(net.advance_to(30.0).is_empty(), "delivery into crash window must be eaten");
        assert!(net.is_crashed(1));
        // Sends from and to the crashed node during the window: dropped at
        // submit time.
        net.send(1, 2, 2, 40);
        net.send(2, 1, 3, 40);
        assert!(net.advance_to(55.0).is_empty());
        // After the window the node is reachable again.
        net.send(0, 1, 4, 40);
        let got = net.advance_to(70.0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 4);
        let s = net.stats();
        assert_eq!((s.dropped, s.delivered, s.in_flight), (3, 1, 0));
        s.assert_invariant("crash window");
    }

    #[test]
    fn partition_drops_only_cross_island_traffic() {
        use crate::fault::FaultPlan;
        let mut net: SimNetwork<u8> = SimNetwork::new(4, latency::constant(1.0), 0.0, 33);
        net.set_fault_plan(FaultPlan::new(33).with_partition(0.0, 100.0, vec![0, 1]));
        net.send(0, 1, 1, 10); // island-internal: flows
        net.send(2, 3, 2, 10); // mainland-internal: flows
        net.send(0, 2, 3, 10); // cross: dropped
        net.send(3, 1, 4, 10); // cross: dropped
        let got = net.advance_to(50.0);
        assert_eq!(got.iter().map(|d| d.payload).collect::<Vec<_>>(), vec![1, 2]);
        // After the window heals, cross traffic flows again.
        net.advance_to(100.0);
        net.send(0, 2, 5, 10);
        assert_eq!(net.advance_to(150.0).len(), 1);
        net.stats().assert_invariant("partition");
    }

    #[test]
    fn reordering_fault_inverts_delivery_order() {
        use crate::fault::FaultPlan;
        let mut net: SimNetwork<u32> = SimNetwork::new(2, latency::constant(5.0), 0.0, 34);
        net.set_fault_plan(FaultPlan::new(34).with_reordering(0.5, 80.0));
        let mut got: Vec<u32> = Vec::new();
        for i in 0..200u32 {
            net.send(0, 1, i, 30);
            got.extend(net.advance_to(f64::from(i + 1)).iter().map(|d| d.payload));
        }
        got.extend(net.advance_to(2_000.0).iter().map(|d| d.payload));
        assert_eq!(got.len(), 200, "reordering must not lose messages");
        let inversions = got.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 10, "expected reordering, saw {inversions} inversions");
    }

    #[test]
    fn conservation_soaks_under_loss_duplication_and_reordering() {
        use crate::fault::{FaultPlan, GilbertElliott};
        let mut net: SimNetwork<u32> = SimNetwork::new(8, latency::king_like(8, 41), 0.01, 41);
        net.set_fault_plan(
            FaultPlan::new(41)
                .with_burst_loss(GilbertElliott::with_mean_loss(0.05))
                .with_duplication(0.05)
                .with_reordering(0.3, 60.0)
                .with_crash(5, 200.0, 600.0),
        );
        let mut rng = Xoshiro256::new(7);
        for step in 0..2_000u32 {
            let from = rng.next_range(8) as usize;
            let mut to = rng.next_range(8) as usize;
            if to == from {
                to = (to + 1) % 8;
            }
            net.send(from, to, step, 80);
            if step % 11 == 0 {
                // advance_to re-asserts the invariant internally at every
                // quiescent point.
                net.advance_to(f64::from(step));
            }
            net.stats().assert_invariant("soak checkpoint");
        }
        net.advance_to(50_000.0);
        let s = net.stats();
        s.assert_invariant("soak final");
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.sent, 2_000);
        assert!(s.duplicated > 20, "duplication never fired: {}", s.duplicated);
        assert!(s.dropped > 100, "burst loss + crash never fired: {}", s.dropped);
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_backwards_panics() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 0.0, 6);
        net.advance_to(10.0);
        net.advance_to(5.0);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        let mut net: SimNetwork<u8> = SimNetwork::new(2, latency::constant(1.0), 0.0, 7);
        net.send(1, 1, 0, 10);
    }
}
