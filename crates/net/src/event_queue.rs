//! A deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking: events scheduled for the same instant pop in insertion
/// order, regardless of heap internals. Determinism here is what makes
/// whole-simulation runs reproducible byte-for-byte.
///
/// # Examples
///
/// ```
/// use watchmen_net::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(5.0, "b");
/// q.push(1.0, "a");
/// q.push(5.0, "c");
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.pop(), Some((5.0, "b")));
/// assert_eq!(q.pop(), Some((5.0, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `value` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, value: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Entry { time, seq: self.seq, value });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.value))
    }

    /// The timestamp of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops every event with `time <= until`, earliest first.
    pub fn drain_until(&mut self, until: f64) -> Vec<(f64, T)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|t| t <= until) {
            out.push(self.pop().expect("peeked"));
        }
        out
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7.0, i)));
        }
    }

    #[test]
    fn drain_until_respects_bound() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(i as f64, i);
        }
        let first = q.drain_until(4.0);
        assert_eq!(first.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(5.0));
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert!(q.drain_until(100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
