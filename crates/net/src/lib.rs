//! Network substrate: deterministic discrete-event simulation plus a real
//! UDP transport.
//!
//! The paper evaluates responsiveness by replaying traces "over the
//! network, exactly as Quake III would", and separately by simulation:
//! "we simulated latency in our networking module using latencies
//! available from the King and PeerWise datasets … (with mean latencies of
//! 62 and 68 ms respectively). … Message loss is simulated with a rate of
//! 1%." This crate provides both paths:
//!
//! * [`SimNetwork`] — an in-process, virtual-time network with pluggable
//!   [`latency`] models (including King-like and PeerWise-like synthetic
//!   matrices), Bernoulli loss, per-node [`BandwidthMeter`]s and
//!   deterministic delivery ordering. A [`fault::FaultPlan`] can be
//!   layered on top for burst loss, duplication, reordering, and crash /
//!   partition windows.
//! * [`udp`] — a small framed transport over real `UdpSocket`s for live
//!   overlay demos.
//! * [`live`] — a nonblocking batched-UDP driver shell (drain-all-per-tick
//!   receive, bounded send queue, heartbeat/address-relearning) for
//!   running a sans-io protocol core over real sockets.
//!
//! # Examples
//!
//! ```
//! use watchmen_net::{latency, SimNetwork};
//!
//! let mut net: SimNetwork<&'static str> = SimNetwork::new(
//!     4,
//!     latency::constant(10.0),
//!     0.0, // no loss
//!     42,
//! );
//! net.send(0, 1, "hello", 16);
//! let delivered = net.advance_to(20.0);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod event_queue;
pub mod fault;
pub mod latency;
pub mod live;
mod simnet;
pub mod udp;
pub mod wire;

pub use bandwidth::BandwidthMeter;
pub use event_queue::EventQueue;
pub use simnet::{Delivery, NetStats, NodeId, SimNetwork};
