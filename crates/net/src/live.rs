//! Live transport: nonblocking batched UDP for a sans-io protocol core.
//!
//! [`LiveTransport`] is the wire-side half of a live deployment. It owns
//! a [`UdpEndpoint`] and gives the driver loop exactly three verbs per
//! tick:
//!
//! 1. [`LiveTransport::queue`] — enqueue an outbound payload for a peer
//!    (bounded queue; overflow drops the *oldest* entry, since the
//!    protocol's reliable control plane retransmits anything that
//!    mattered and fresher state supersedes staler state).
//! 2. [`LiveTransport::pump`] — one tick's worth of I/O: drain **all**
//!    pending datagrams (skipping and counting malformed/truncated ones),
//!    emit a transport heartbeat when due, then flush the send queue
//!    until the socket pushes back.
//! 3. [`LiveTransport::stats`] — the transport-level counters.
//!
//! The transport is deliberately clock-free: "time" is the tick counter
//! advanced by each [`LiveTransport::pump`] call, so the same code is
//! exact under a test harness that pumps in a loop and under a real
//! driver that pumps once per frame. Heartbeats are empty-payload frames
//! — `watchmen-core` envelopes are never empty, so the two planes cannot
//! be confused — and serve address learning and liveness only; protocol
//! reliability stays in the core's ack/retransmit machinery.
//!
//! Reconnect is implicit: every incoming frame refreshes the sender's
//! socket address, so a peer that rebinds (new NAT mapping, process
//! restart behind the same logical id) is followed as soon as it speaks.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use watchmen_telemetry::FlightRecorder;

use crate::udp::{Recv, UdpEndpoint};

/// Tuning knobs for a [`LiveTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveConfig {
    /// Outbound queue capacity in payloads; beyond it the oldest queued
    /// payload is dropped (and counted).
    pub max_queue: usize,
    /// Ticks between heartbeat broadcasts to every registered peer.
    pub heartbeat_every: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        // A 16-player frame emits tens of payloads; 1024 rides out a
        // multi-frame socket stall without unbounded memory.
        LiveConfig { max_queue: 1024, heartbeat_every: 20 }
    }
}

/// Transport-level counters, separate from the protocol's own telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Well-formed payload frames handed to the driver.
    pub frames_in: u64,
    /// Payload frames put on the wire.
    pub frames_out: u64,
    /// Heartbeats sent to peers.
    pub heartbeats_sent: u64,
    /// Heartbeats received from peers.
    pub heartbeats_received: u64,
    /// Malformed datagrams skipped while draining.
    pub malformed: u64,
    /// Truncated (oversized) datagrams skipped while draining.
    pub truncated: u64,
    /// Outbound payloads dropped because the bounded queue overflowed.
    pub queue_dropped: u64,
    /// Outbound payloads dropped because the peer id had no known
    /// address yet.
    pub unroutable_dropped: u64,
}

/// One tick's inbound result from [`LiveTransport::pump`]: the payload
/// frames that arrived, in receive order.
pub type Inbound = Vec<(u32, Vec<u8>)>;

/// A nonblocking, batched UDP transport for one logical node. See the
/// module docs for the tick contract.
#[derive(Debug)]
pub struct LiveTransport {
    endpoint: UdpEndpoint,
    config: LiveConfig,
    peers: BTreeMap<u32, SocketAddr>,
    last_heard: BTreeMap<u32, u64>,
    queue: VecDeque<(u32, Vec<u8>)>,
    ticks: u64,
    stats: LiveStats,
}

impl LiveTransport {
    /// Binds a transport for logical node `node_id` at `addr` (port 0 for
    /// ephemeral) with default knobs.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(node_id: u32, addr: &str) -> io::Result<Self> {
        Ok(LiveTransport {
            endpoint: UdpEndpoint::bind(node_id, addr)?,
            config: LiveConfig::default(),
            peers: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            queue: VecDeque::new(),
            ticks: 0,
            stats: LiveStats::default(),
        })
    }

    /// Replaces the tuning knobs.
    #[must_use]
    pub fn with_config(mut self, config: LiveConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a flight recorder to the underlying endpoint.
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.endpoint.attach_recorder(recorder);
    }

    /// This transport's logical node id.
    #[must_use]
    pub fn node_id(&self) -> u32 {
        self.endpoint.node_id()
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.endpoint.local_addr()
    }

    /// Registers (or re-registers) a peer's address. Incoming frames from
    /// the peer keep this fresh automatically afterwards.
    pub fn register_peer(&mut self, id: u32, addr: SocketAddr) {
        self.peers.insert(id, addr);
    }

    /// The current best-known address for a peer.
    #[must_use]
    pub fn peer_addr(&self, id: u32) -> Option<SocketAddr> {
        self.peers.get(&id).copied()
    }

    /// Peers heard from (heartbeat or payload) within the last `within`
    /// ticks.
    #[must_use]
    pub fn live_peers(&self, within: u64) -> usize {
        let floor = self.ticks.saturating_sub(within);
        self.last_heard.values().filter(|&&t| t >= floor).count()
    }

    /// Ticks pumped so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Transport counters.
    #[must_use]
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// Outbound payloads still waiting for socket room.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues `bytes` for peer `to`. Unknown peers drop immediately
    /// (counted — the core will retransmit control traffic once the peer
    /// is heard); a full queue drops its oldest entry first.
    pub fn queue(&mut self, to: u32, bytes: Vec<u8>) {
        if !self.peers.contains_key(&to) {
            self.stats.unroutable_dropped += 1;
            return;
        }
        if self.queue.len() >= self.config.max_queue {
            self.queue.pop_front();
            self.stats.queue_dropped += 1;
        }
        self.queue.push_back((to, bytes));
    }

    /// One tick of transport I/O: advance the tick counter, heartbeat if
    /// due, drain every pending datagram, flush the send queue until the
    /// socket would block. Returns the payload frames that arrived.
    ///
    /// # Errors
    ///
    /// Propagates socket errors other than `WouldBlock`.
    pub fn pump(&mut self) -> io::Result<Inbound> {
        self.ticks += 1;
        if self.ticks % self.config.heartbeat_every == 1 || self.config.heartbeat_every == 1 {
            self.beat()?;
        }
        let inbound = self.drain()?;
        self.flush()?;
        Ok(inbound)
    }

    /// Sends one heartbeat (empty-payload frame) to every registered
    /// peer, immediately, regardless of cadence.
    ///
    /// # Errors
    ///
    /// Propagates socket errors other than `WouldBlock`.
    pub fn beat(&mut self) -> io::Result<()> {
        let addrs: Vec<SocketAddr> = self.peers.values().copied().collect();
        for addr in addrs {
            match self.endpoint.send_to(addr, b"") {
                Ok(()) => self.stats.heartbeats_sent += 1,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Drains every pending datagram: payload frames are returned,
    /// heartbeats refresh liveness, garbage is counted and skipped. Every
    /// frame (heartbeat or payload) re-learns the sender's address.
    fn drain(&mut self) -> io::Result<Inbound> {
        let mut inbound = Vec::new();
        loop {
            match self.endpoint.poll_recv()? {
                Recv::Frame { sender, from, payload } => {
                    self.peers.insert(sender, from);
                    self.last_heard.insert(sender, self.ticks);
                    if payload.is_empty() {
                        self.stats.heartbeats_received += 1;
                    } else {
                        self.stats.frames_in += 1;
                        inbound.push((sender, payload));
                    }
                }
                Recv::Malformed { .. } => self.stats.malformed += 1,
                Recv::Truncated { .. } => self.stats.truncated += 1,
                Recv::Empty => return Ok(inbound),
            }
        }
    }

    /// Flushes the send queue until it is empty or the socket pushes
    /// back; what remains stays queued for the next tick.
    fn flush(&mut self) -> io::Result<()> {
        while let Some((to, bytes)) = self.queue.front() {
            // The address is re-resolved at send time: the peer may have
            // rebound since the payload was queued.
            let Some(addr) = self.peers.get(to).copied() else {
                self.stats.unroutable_dropped += 1;
                self.queue.pop_front();
                continue;
            };
            match self.endpoint.send_to(addr, bytes) {
                Ok(()) => {
                    self.stats.frames_out += 1;
                    self.queue.pop_front();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn pair() -> (LiveTransport, LiveTransport) {
        let mut a = LiveTransport::bind(0, "127.0.0.1:0").unwrap();
        let mut b = LiveTransport::bind(1, "127.0.0.1:0").unwrap();
        let (aa, ba) = (a.local_addr().unwrap(), b.local_addr().unwrap());
        a.register_peer(1, ba);
        b.register_peer(0, aa);
        (a, b)
    }

    /// Pumps `rx` until `want` payload frames arrived or two seconds pass.
    fn pump_until(rx: &mut LiveTransport, want: usize) -> Inbound {
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(rx.pump().unwrap());
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn payloads_flow_between_transports() {
        let (mut a, mut b) = pair();
        a.queue(1, b"hello".to_vec());
        a.queue(1, b"world".to_vec());
        a.pump().unwrap();
        let got = pump_until(&mut b, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, b"hello".to_vec()));
        assert_eq!(got[1], (0, b"world".to_vec()));
        assert_eq!(a.stats().frames_out, 2);
        assert_eq!(b.stats().frames_in, 2);
    }

    #[test]
    fn heartbeats_filtered_from_payload_stream_but_refresh_liveness() {
        let (mut a, mut b) = pair();
        a.beat().unwrap();
        assert_eq!(a.stats().heartbeats_sent, 1);
        let deadline = Instant::now() + Duration::from_secs(2);
        while b.stats().heartbeats_received == 0 && Instant::now() < deadline {
            let inbound = b.pump().unwrap();
            assert!(inbound.is_empty(), "heartbeats must not surface as payloads");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b.stats().heartbeats_received, 1);
        assert_eq!(b.live_peers(u64::MAX), 1);
    }

    #[test]
    fn bounded_queue_drops_oldest() {
        let mut a = LiveTransport::bind(0, "127.0.0.1:0")
            .unwrap()
            .with_config(LiveConfig { max_queue: 2, heartbeat_every: 1000 });
        // A peer that never drains: a's socket still accepts sends, so
        // use an unregistered-peer-free setup with a real address.
        let sink = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        a.register_peer(1, sink.local_addr().unwrap());
        a.queue(1, b"one".to_vec());
        a.queue(1, b"two".to_vec());
        a.queue(1, b"three".to_vec()); // evicts "one"
        assert_eq!(a.queued(), 2);
        assert_eq!(a.stats().queue_dropped, 1);
        a.pump().unwrap();
        assert_eq!(a.stats().frames_out, 2);
        let got = {
            let deadline = Instant::now() + Duration::from_secs(2);
            let mut got = Vec::new();
            while got.len() < 2 && Instant::now() < deadline {
                while let Some(f) = sink.try_recv().unwrap() {
                    if !f.2.is_empty() {
                        // Skip the transport heartbeat the first pump emits.
                        got.push(f.2);
                    }
                }
            }
            got
        };
        assert_eq!(got, vec![b"two".to_vec(), b"three".to_vec()], "oldest was evicted");
    }

    #[test]
    fn unroutable_payloads_drop_counted() {
        let mut a = LiveTransport::bind(0, "127.0.0.1:0").unwrap();
        a.queue(42, b"nowhere".to_vec());
        assert_eq!(a.queued(), 0);
        assert_eq!(a.stats().unroutable_dropped, 1);
    }

    #[test]
    fn peer_rebind_is_followed() {
        let (mut a, b) = pair();
        drop(b);
        // The peer comes back on a fresh socket (same logical id 1).
        let mut b2 = LiveTransport::bind(1, "127.0.0.1:0").unwrap();
        b2.register_peer(0, a.local_addr().unwrap());
        b2.beat().unwrap();
        // a hears the heartbeat and re-learns 1's address…
        let deadline = Instant::now() + Duration::from_secs(2);
        while a.peer_addr(1) != Some(b2.local_addr().unwrap()) && Instant::now() < deadline {
            a.pump().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.peer_addr(1), Some(b2.local_addr().unwrap()), "reconnect not followed");
        // …and traffic flows to the new incarnation.
        a.queue(1, b"welcome back".to_vec());
        a.pump().unwrap();
        let got = pump_until(&mut b2, 1);
        assert_eq!(got, vec![(0, b"welcome back".to_vec())]);
    }

    #[test]
    fn drain_rides_through_garbage() {
        let (mut a, mut b) = pair();
        let raw = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let dest = b.local_addr().unwrap();
        a.queue(1, b"before".to_vec());
        a.pump().unwrap();
        raw.send_to(b"\x00\x01garbage", dest).unwrap();
        a.queue(1, b"after".to_vec());
        a.pump().unwrap();
        let got = pump_until(&mut b, 2);
        assert_eq!(got.len(), 2, "one garbage datagram must not cost the rest of the drain");
        assert_eq!(b.stats().malformed, 1);
    }
}
