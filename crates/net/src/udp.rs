//! A small framed transport over real UDP sockets.
//!
//! The paper's prototype "rel\[ies\] on UDP for faster communication"; this
//! module lets the overlay run over genuine sockets for live demos (see
//! the `udp_overlay` and `live_cluster` examples), while the experiments
//! use the deterministic [`crate::SimNetwork`].
//!
//! Frames are length-prefixed datagrams tagged with the sender's logical
//! node id, so a receiver can demultiplex players without a lookup table.
//! Every received datagram lands in exactly one of three buckets —
//! accepted ([`Recv::Frame`]), [`Recv::Malformed`] or [`Recv::Truncated`]
//! — each with its own telemetry counter, so a receive loop can keep
//! draining through garbage and an operator can tell wire corruption from
//! oversized datagrams at a glance.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use watchmen_telemetry::trace::{EventKind, Phase, TraceEvent, TraceId, NO_SUBJECT};
use watchmen_telemetry::FlightRecorder;

use crate::wire::{GetBytes, PutBytes};

/// Maximum payload accepted per frame (fits comfortably in one datagram).
pub const MAX_PAYLOAD: usize = 1400;

/// Bytes of framing before the payload: magic (2) + node id (4) +
/// payload length (2).
pub const HEADER_LEN: usize = 8;

/// Receive buffer size: the largest legal frame plus one spare byte. A
/// `recv_from` that fills the *entire* buffer can only be a datagram the
/// kernel truncated to fit — no legal frame is that long — which is how
/// oversized datagrams are told apart from merely malformed ones.
const RECV_BUF: usize = HEADER_LEN + MAX_PAYLOAD + 1;

/// Magic bytes marking a Watchmen frame.
const MAGIC: u16 = 0x574d; // "WM"

/// The typed outcome of one receive attempt: exactly one of accepted,
/// malformed, truncated, or nothing pending. Drain loops match on this
/// and only stop at [`Recv::Empty`] — a garbage datagram no longer looks
/// like an empty queue (the bug the untyped `Option` return used to
/// have).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// A well-formed frame: sender's logical id, source address, payload.
    Frame {
        /// The sender's logical node id from the frame header.
        sender: u32,
        /// The datagram's source socket address.
        from: SocketAddr,
        /// The frame payload.
        payload: Vec<u8>,
    },
    /// A datagram that fit the buffer but failed framing (bad magic,
    /// short header, or a length field that disagrees with the datagram).
    Malformed {
        /// Where the garbage came from.
        from: SocketAddr,
    },
    /// A datagram larger than any legal frame, truncated by the kernel.
    Truncated {
        /// Where the oversized datagram came from.
        from: SocketAddr,
    },
    /// No datagram pending (or the blocking timeout expired).
    Empty,
}

/// A UDP endpoint bound to a local address, sending and receiving framed
/// payloads tagged with logical node ids.
///
/// # Examples
///
/// ```no_run
/// use watchmen_net::udp::UdpEndpoint;
///
/// # fn main() -> std::io::Result<()> {
/// let a = UdpEndpoint::bind(0, "127.0.0.1:0")?;
/// let b = UdpEndpoint::bind(1, "127.0.0.1:0")?;
/// a.send_to(b.local_addr()?, b"hello")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UdpEndpoint {
    node_id: u32,
    socket: UdpSocket,
    /// Optional flight recorder for per-frame send/receive events.
    recorder: Option<Arc<FlightRecorder>>,
}

impl UdpEndpoint {
    /// Binds a socket for logical node `node_id` at `addr` (use port 0 for
    /// an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(node_id: u32, addr: &str) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpEndpoint { node_id, socket, recorder: None })
    }

    /// Attaches a flight recorder: every frame sent or received is
    /// recorded as a [`Phase::NetFlush`] event tagged `"udp"` (`value`
    /// carries the payload size; `subject` the peer's logical id).
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    fn record_frame_event(&self, kind: EventKind, peer: u32, bytes: i64) {
        if let Some(rec) = &self.recorder {
            rec.record(TraceEvent::point(
                TraceId::NONE,
                self.node_id,
                peer,
                0,
                Phase::NetFlush,
                kind,
                "udp",
                bytes,
            ));
        }
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// This endpoint's logical node id.
    #[must_use]
    pub fn node_id(&self) -> u32 {
        self.node_id
    }

    /// Sends `payload` to `dest`, framed with this node's id.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the payload exceeds [`MAX_PAYLOAD`];
    /// propagates socket errors.
    pub fn send_to(&self, dest: SocketAddr, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload {} exceeds {MAX_PAYLOAD}", payload.len()),
            ));
        }
        let frame = encode_frame(self.node_id, payload);
        self.socket.send_to(&frame, dest)?;
        let telemetry = watchmen_telemetry::global();
        telemetry.counter("udp_frames_sent_total").inc();
        telemetry.counter("udp_bytes_sent_total").add(frame.len() as u64);
        self.record_frame_event(EventKind::Send, NO_SUBJECT, payload.len() as i64);
        Ok(())
    }

    /// One nonblocking receive attempt, classified. This is the primitive
    /// the batched drain loops are built on: call it until it returns
    /// [`Recv::Empty`] and the socket queue is truly drained, whatever
    /// garbage was interleaved.
    ///
    /// # Errors
    ///
    /// Propagates socket errors other than `WouldBlock`/`TimedOut`.
    pub fn poll_recv(&self) -> io::Result<Recv> {
        let mut buf = [0u8; RECV_BUF];
        match self.socket.recv_from(&mut buf) {
            Ok((len, from)) => {
                if len == RECV_BUF {
                    // The kernel filled the whole buffer: the datagram was
                    // at least one byte longer than any legal frame and
                    // its tail is gone. Distinct from malformed — this is
                    // an MTU/attacker signal, not wire corruption.
                    watchmen_telemetry::global().counter("udp_frames_truncated_total").inc();
                    Ok(Recv::Truncated { from })
                } else {
                    match parse_frame(&buf[..len]) {
                        Some((sender, payload)) => {
                            self.record_frame_event(
                                EventKind::Deliver,
                                sender,
                                payload.len() as i64,
                            );
                            Ok(Recv::Frame { sender, from, payload })
                        }
                        None => Ok(Recv::Malformed { from }),
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(Recv::Empty)
            }
            Err(e) => Err(e),
        }
    }

    /// Receives one well-formed frame if available, returning the
    /// sender's logical node id, socket address and payload. Malformed or
    /// truncated datagrams are skipped (and counted), so `Ok(None)` means
    /// the queue is truly empty — a `while let Some(..)` drain no longer
    /// stalls on one garbage datagram.
    ///
    /// # Errors
    ///
    /// Propagates socket errors other than `WouldBlock`.
    pub fn try_recv(&self) -> io::Result<Option<(u32, SocketAddr, Vec<u8>)>> {
        loop {
            match self.poll_recv()? {
                Recv::Frame { sender, from, payload } => return Ok(Some((sender, from, payload))),
                Recv::Malformed { .. } | Recv::Truncated { .. } => {}
                Recv::Empty => return Ok(None),
            }
        }
    }

    /// Blocks up to `timeout` for one well-formed frame, skipping garbage
    /// datagrams within the deadline.
    ///
    /// The socket is always restored to its bound-time state (nonblocking,
    /// no read timeout) before returning, so later users never inherit a
    /// stale timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `Ok(None)` on timeout.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> io::Result<Option<(u32, SocketAddr, Vec<u8>)>> {
        self.socket.set_nonblocking(false)?;
        let deadline = Instant::now() + timeout;
        let mut remaining = timeout;
        let result = loop {
            // A zero read timeout is invalid; round up to keep the final
            // sliver of the deadline blocking rather than erroring.
            self.socket.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
            match self.poll_recv() {
                Ok(Recv::Frame { sender, from, payload }) => {
                    break Ok(Some((sender, from, payload)));
                }
                Ok(Recv::Malformed { .. } | Recv::Truncated { .. }) => {
                    remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break Ok(None);
                    }
                }
                Ok(Recv::Empty) => break Ok(None),
                Err(e) => break Err(e),
            }
        };
        self.socket.set_read_timeout(None)?;
        self.socket.set_nonblocking(true)?;
        result
    }
}

/// Encodes a frame: magic, sender id, payload length, payload. The exact
/// byte layout is pinned by a golden test in `tests/frame_fuzz.rs`.
#[must_use]
pub fn encode_frame(node_id: u32, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.put_u16(MAGIC);
    frame.put_u32(node_id);
    frame.put_u16(payload.len() as u16);
    frame.put_slice(payload);
    frame
}

/// Parses a frame, returning the sender id and payload, or `None` if
/// malformed. Never panics, whatever the input bytes.
#[must_use]
pub fn parse_frame(mut data: &[u8]) -> Option<(u32, Vec<u8>)> {
    let telemetry = watchmen_telemetry::global();
    if data.len() < HEADER_LEN || data.get_u16() != MAGIC {
        telemetry.counter("udp_frames_malformed_total").inc();
        return None;
    }
    let id = data.get_u32();
    let len = data.get_u16() as usize;
    if data.len() != len {
        telemetry.counter("udp_frames_malformed_total").inc();
        return None;
    }
    telemetry.counter("udp_frames_received_total").inc();
    Some((id, data.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_loopback() {
        let a = UdpEndpoint::bind(7, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        a.send_to(b.local_addr().unwrap(), b"state update").unwrap();
        let (id, _from, payload) =
            b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame arrives");
        assert_eq!(id, 7);
        assert_eq!(&payload[..], b"state update");
        assert_eq!(b.node_id(), 9);
    }

    #[test]
    fn try_recv_empty_is_none() {
        let a = UdpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn oversized_payload_rejected() {
        let a = UdpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        let big = vec![0u8; MAX_PAYLOAD + 1];
        let err = a.send_to("127.0.0.1:9".parse().unwrap(), &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn malformed_frames_discarded() {
        assert!(parse_frame(b"junk").is_none());
        assert!(parse_frame(&[0u8; 8]).is_none());
        // Correct magic but wrong length field.
        let mut f = Vec::new();
        f.put_u16(MAGIC);
        f.put_u32(1);
        f.put_u16(10); // claims 10 bytes, provides 2
        f.put_slice(b"xy");
        assert!(parse_frame(&f).is_none());
    }

    #[test]
    fn recorder_sees_frames_both_ways() {
        let rec_a = Arc::new(FlightRecorder::new(16));
        let rec_b = Arc::new(FlightRecorder::new(16));
        let mut a = UdpEndpoint::bind(7, "127.0.0.1:0").unwrap();
        let mut b = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        a.attach_recorder(Arc::clone(&rec_a));
        b.attach_recorder(Arc::clone(&rec_b));
        a.send_to(b.local_addr().unwrap(), b"ping").unwrap();
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame");
        let sends = rec_a.snapshot();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, EventKind::Send);
        assert_eq!(sends[0].value, 4);
        let recvs = rec_b.snapshot();
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].kind, EventKind::Deliver);
        assert_eq!(recvs[0].subject, 7, "peer id recorded");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let a = UdpEndpoint::bind(2, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(3, "127.0.0.1:0").unwrap();
        a.send_to(b.local_addr().unwrap(), b"").unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame");
        assert!(got.2.is_empty());
    }

    /// The receive-path drain bug: a garbage datagram between two valid
    /// frames used to return `Ok(None)` from `try_recv`, ending a
    /// `while let Some(..)` drain with a frame still queued. The drain
    /// must now skip garbage and only stop when the queue is empty.
    #[test]
    fn garbage_between_frames_does_not_stall_drain() {
        let a = UdpEndpoint::bind(4, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(5, "127.0.0.1:0").unwrap();
        let dest = b.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.send_to(dest, b"first").unwrap();
        raw.send_to(b"\xff\xffgarbage", dest).unwrap();
        a.send_to(dest, b"second").unwrap();

        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 2 && Instant::now() < deadline {
            // The production pattern: drain everything pending this tick.
            while let Some((id, _from, payload)) = b.try_recv().unwrap() {
                got.push((id, payload));
            }
        }
        assert_eq!(got.len(), 2, "both frames must survive the interleaved garbage");
        assert!(got.iter().all(|(id, _)| *id == 4));
        let payloads: Vec<&[u8]> = got.iter().map(|(_, p)| p.as_slice()).collect();
        assert!(payloads.contains(&b"first".as_slice()));
        assert!(payloads.contains(&b"second".as_slice()));
    }

    /// `recv_timeout` must restore the socket fully: nonblocking on, read
    /// timeout cleared. A leaked timeout silently changed the behavior of
    /// any later blocking user of the socket.
    #[test]
    fn recv_timeout_restores_socket_state() {
        let a = UdpEndpoint::bind(6, "127.0.0.1:0").unwrap();
        assert!(a.recv_timeout(Duration::from_millis(20)).unwrap().is_none());
        assert_eq!(a.socket.read_timeout().unwrap(), None, "stale read timeout leaked");
        // Nonblocking restored too: an immediate receive must not block.
        let started = Instant::now();
        assert!(a.try_recv().unwrap().is_none());
        assert!(started.elapsed() < Duration::from_millis(500));
    }

    /// `recv_timeout` skips garbage within its deadline instead of
    /// reporting it as a timeout.
    #[test]
    fn recv_timeout_skips_garbage() {
        let a = UdpEndpoint::bind(8, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        let dest = b.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"not a frame", dest).unwrap();
        a.send_to(dest, b"real").unwrap();
        let (id, _from, payload) =
            b.recv_timeout(Duration::from_secs(2)).unwrap().expect("the valid frame");
        assert_eq!(id, 8);
        assert_eq!(&payload[..], b"real");
    }

    /// Datagrams longer than any legal frame are classified as truncated,
    /// not malformed: the kernel cut them to the buffer, so their framing
    /// was never inspectable.
    #[test]
    fn oversized_datagram_classified_truncated() {
        let b = UdpEndpoint::bind(10, "127.0.0.1:0").unwrap();
        let dest = b.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        let oversized = vec![0xab; RECV_BUF + 100];
        raw.send_to(&oversized, dest).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match b.poll_recv().unwrap() {
                Recv::Truncated { .. } => break,
                Recv::Empty => {
                    assert!(Instant::now() < deadline, "truncated datagram never classified");
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("expected Truncated, got {other:?}"),
            }
        }
        // A max-size *legal* frame still parses: truncation detection must
        // not eat the boundary case.
        let a = UdpEndpoint::bind(11, "127.0.0.1:0").unwrap();
        let max = vec![0x7u8; MAX_PAYLOAD];
        a.send_to(dest, &max).unwrap();
        let (id, _from, payload) =
            b.recv_timeout(Duration::from_secs(2)).unwrap().expect("max-size frame");
        assert_eq!(id, 11);
        assert_eq!(payload.len(), MAX_PAYLOAD);
    }
}
