//! A small framed transport over real UDP sockets.
//!
//! The paper's prototype "rel\[ies\] on UDP for faster communication"; this
//! module lets the overlay run over genuine sockets for live demos (see
//! the `udp_overlay` example), while the experiments use the deterministic
//! [`crate::SimNetwork`].
//!
//! Frames are length-prefixed datagrams tagged with the sender's logical
//! node id, so a receiver can demultiplex players without a lookup table.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

use watchmen_telemetry::trace::{EventKind, Phase, TraceEvent, TraceId, NO_SUBJECT};
use watchmen_telemetry::FlightRecorder;

use crate::wire::{GetBytes, PutBytes};

/// Maximum payload accepted per frame (fits comfortably in one datagram).
pub const MAX_PAYLOAD: usize = 1400;

/// Magic bytes marking a Watchmen frame.
const MAGIC: u16 = 0x574d; // "WM"

/// A UDP endpoint bound to a local address, sending and receiving framed
/// payloads tagged with logical node ids.
///
/// # Examples
///
/// ```no_run
/// use watchmen_net::udp::UdpEndpoint;
///
/// # fn main() -> std::io::Result<()> {
/// let a = UdpEndpoint::bind(0, "127.0.0.1:0")?;
/// let b = UdpEndpoint::bind(1, "127.0.0.1:0")?;
/// a.send_to(b.local_addr()?, b"hello")?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct UdpEndpoint {
    node_id: u32,
    socket: UdpSocket,
    /// Optional flight recorder for per-frame send/receive events.
    recorder: Option<Arc<FlightRecorder>>,
}

impl UdpEndpoint {
    /// Binds a socket for logical node `node_id` at `addr` (use port 0 for
    /// an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(node_id: u32, addr: &str) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpEndpoint { node_id, socket, recorder: None })
    }

    /// Attaches a flight recorder: every frame sent or received is
    /// recorded as a [`Phase::NetFlush`] event tagged `"udp"` (`value`
    /// carries the payload size; `subject` the peer's logical id).
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    fn record_frame_event(&self, kind: EventKind, peer: u32, bytes: i64) {
        if let Some(rec) = &self.recorder {
            rec.record(TraceEvent::point(
                TraceId::NONE,
                self.node_id,
                peer,
                0,
                Phase::NetFlush,
                kind,
                "udp",
                bytes,
            ));
        }
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// This endpoint's logical node id.
    #[must_use]
    pub fn node_id(&self) -> u32 {
        self.node_id
    }

    /// Sends `payload` to `dest`, framed with this node's id.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the payload exceeds [`MAX_PAYLOAD`];
    /// propagates socket errors.
    pub fn send_to(&self, dest: SocketAddr, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload {} exceeds {MAX_PAYLOAD}", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.put_u16(MAGIC);
        frame.put_u32(self.node_id);
        frame.put_u16(payload.len() as u16);
        frame.put_slice(payload);
        self.socket.send_to(&frame, dest)?;
        let telemetry = watchmen_telemetry::global();
        telemetry.counter("udp_frames_sent_total").inc();
        telemetry.counter("udp_bytes_sent_total").add(frame.len() as u64);
        self.record_frame_event(EventKind::Send, NO_SUBJECT, payload.len() as i64);
        Ok(())
    }

    /// Receives one frame if available, returning the sender's logical
    /// node id, socket address and payload. Returns `Ok(None)` when no
    /// datagram is pending or a malformed frame was discarded.
    ///
    /// # Errors
    ///
    /// Propagates socket errors other than `WouldBlock`.
    pub fn try_recv(&self) -> io::Result<Option<(u32, SocketAddr, Vec<u8>)>> {
        let mut buf = [0u8; 2048];
        match self.socket.recv_from(&mut buf) {
            Ok((len, from)) => Ok(parse_frame(&buf[..len]).map(|(id, payload)| {
                self.record_frame_event(EventKind::Deliver, id, payload.len() as i64);
                (id, from, payload)
            })),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Blocks up to `timeout` for one frame.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; `Ok(None)` on timeout or a malformed
    /// frame.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> io::Result<Option<(u32, SocketAddr, Vec<u8>)>> {
        self.socket.set_nonblocking(false)?;
        self.socket.set_read_timeout(Some(timeout))?;
        let mut buf = [0u8; 2048];
        let result = match self.socket.recv_from(&mut buf) {
            Ok((len, from)) => Ok(parse_frame(&buf[..len]).map(|(id, payload)| {
                self.record_frame_event(EventKind::Deliver, id, payload.len() as i64);
                (id, from, payload)
            })),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.socket.set_nonblocking(true)?;
        result
    }
}

/// Parses a frame, returning the sender id and payload, or `None` if
/// malformed.
fn parse_frame(mut data: &[u8]) -> Option<(u32, Vec<u8>)> {
    let telemetry = watchmen_telemetry::global();
    if data.len() < 8 || data.get_u16() != MAGIC {
        telemetry.counter("udp_frames_malformed_total").inc();
        return None;
    }
    let id = data.get_u32();
    let len = data.get_u16() as usize;
    if data.len() != len {
        telemetry.counter("udp_frames_malformed_total").inc();
        return None;
    }
    telemetry.counter("udp_frames_received_total").inc();
    Some((id, data.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_loopback() {
        let a = UdpEndpoint::bind(7, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        a.send_to(b.local_addr().unwrap(), b"state update").unwrap();
        let (id, _from, payload) =
            b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame arrives");
        assert_eq!(id, 7);
        assert_eq!(&payload[..], b"state update");
        assert_eq!(b.node_id(), 9);
    }

    #[test]
    fn try_recv_empty_is_none() {
        let a = UdpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn oversized_payload_rejected() {
        let a = UdpEndpoint::bind(1, "127.0.0.1:0").unwrap();
        let big = vec![0u8; MAX_PAYLOAD + 1];
        let err = a.send_to("127.0.0.1:9".parse().unwrap(), &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn malformed_frames_discarded() {
        assert!(parse_frame(b"junk").is_none());
        assert!(parse_frame(&[0u8; 8]).is_none());
        // Correct magic but wrong length field.
        let mut f = Vec::new();
        f.put_u16(MAGIC);
        f.put_u32(1);
        f.put_u16(10); // claims 10 bytes, provides 2
        f.put_slice(b"xy");
        assert!(parse_frame(&f).is_none());
    }

    #[test]
    fn recorder_sees_frames_both_ways() {
        let rec_a = Arc::new(FlightRecorder::new(16));
        let rec_b = Arc::new(FlightRecorder::new(16));
        let mut a = UdpEndpoint::bind(7, "127.0.0.1:0").unwrap();
        let mut b = UdpEndpoint::bind(9, "127.0.0.1:0").unwrap();
        a.attach_recorder(Arc::clone(&rec_a));
        b.attach_recorder(Arc::clone(&rec_b));
        a.send_to(b.local_addr().unwrap(), b"ping").unwrap();
        let _ = b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame");
        let sends = rec_a.snapshot();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].kind, EventKind::Send);
        assert_eq!(sends[0].value, 4);
        let recvs = rec_b.snapshot();
        assert_eq!(recvs.len(), 1);
        assert_eq!(recvs[0].kind, EventKind::Deliver);
        assert_eq!(recvs[0].subject, 7, "peer id recorded");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let a = UdpEndpoint::bind(2, "127.0.0.1:0").unwrap();
        let b = UdpEndpoint::bind(3, "127.0.0.1:0").unwrap();
        a.send_to(b.local_addr().unwrap(), b"").unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().expect("frame");
        assert!(got.2.is_empty());
    }
}
