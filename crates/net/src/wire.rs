//! Minimal big-endian byte-buffer helpers shared by the wire codecs.
//!
//! The message codecs in `watchmen-core` and the UDP framing here used to
//! lean on the `bytes` crate; these two extension traits provide the same
//! `put_*`/`get_*` vocabulary over plain `Vec<u8>`/`&[u8]`, keeping the
//! workspace free of external dependencies. All integers are big-endian,
//! matching the original encodings byte for byte.

/// Big-endian write helpers for `Vec<u8>`.
///
/// # Examples
///
/// ```
/// use watchmen_net::wire::PutBytes;
///
/// let mut b = Vec::new();
/// b.put_u16(0x574d);
/// b.put_u32(7);
/// assert_eq!(b, [0x57, 0x4d, 0, 0, 0, 7]);
/// ```
pub trait PutBytes {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32);
    /// Appends a big-endian IEEE-754 `f32`.
    fn put_f32(&mut self, v: f32);
    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends raw bytes.
    fn put_slice(&mut self, v: &[u8]);
}

impl PutBytes for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_f32(&mut self, v: f32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Big-endian read helpers for `&[u8]`, advancing the slice in place.
///
/// # Panics
///
/// Each getter panics if the slice is too short — callers bound-check
/// with `len()` first, exactly as with `bytes::Buf`.
///
/// # Examples
///
/// ```
/// use watchmen_net::wire::GetBytes;
///
/// let data = [0u8, 0, 0, 9, 42];
/// let mut buf: &[u8] = &data;
/// assert_eq!(buf.get_u32(), 9);
/// assert_eq!(buf.get_u8(), 42);
/// assert!(buf.is_empty());
/// ```
pub trait GetBytes {
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32;
    /// Reads a big-endian IEEE-754 `f32`.
    fn get_f32(&mut self) -> f32;
    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64;
}

/// Splits off the first `N` bytes as an array, advancing the slice.
fn take_array<const N: usize>(buf: &mut &[u8]) -> [u8; N] {
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    head.try_into().expect("split_at guarantees length")
}

impl GetBytes for &[u8] {
    fn get_u8(&mut self) -> u8 {
        take_array::<1>(self)[0]
    }
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(take_array(self))
    }
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(take_array(self))
    }
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(take_array(self))
    }
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(take_array(self))
    }
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(take_array(self))
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(take_array(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = Vec::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_i32(-7);
        b.put_f32(1.5);
        b.put_f64(-2.25);
        b.put_slice(b"xy");
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_i32(), -7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r, b"xy");
    }

    #[test]
    fn encoding_is_big_endian() {
        let mut b = Vec::new();
        b.put_u32(1);
        assert_eq!(b, [0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "mid > len")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
