//! Pluggable network fault injection for the simulator.
//!
//! The paper's replay experiments simulate Bernoulli loss ("Message loss
//! is simulated with a rate of 1%"), but real WANs lose packets in
//! *bursts*, duplicate them, reorder them, and drop whole peers. A
//! [`FaultPlan`] bundles those behaviours so a [`crate::SimNetwork`] run
//! can exercise the control plane's recovery paths:
//!
//! * **Burst loss** via a two-state [`GilbertElliott`] channel.
//! * **Duplication** — an extra copy of a message is injected with its own
//!   independently-sampled latency (counted in
//!   [`crate::NetStats::duplicated`] so conservation still balances).
//! * **Reordering** — a fraction of messages receive extra delay, which
//!   swaps them past later sends.
//! * **Crash windows** — a node is silent for `[from_ms, to_ms)`: its
//!   sends are dropped at submit time and messages addressed to it are
//!   dropped at delivery time.
//! * **Partition windows** — messages crossing between an island of nodes
//!   and the rest are dropped while the window is open.
//! * **Churn events** — a mid-match joiner's slot is offline before its
//!   join instant and a leaver's from its unplug instant; the protocol
//!   side (lobby tickets, `Join`/`Leave` announcements) is driven by the
//!   harness reading [`FaultPlan::churn`].
//!
//! All state is deterministic for a fixed seed, like the rest of the
//! simulator.

use watchmen_crypto::rng::Xoshiro256;

use crate::NodeId;

/// A two-state Gilbert–Elliott burst-loss channel.
///
/// The channel is either in the *good* state (loss `loss_good`, usually 0)
/// or the *bad* state (loss `loss_bad`); per message it transitions
/// good→bad with probability `p_enter_bad` and bad→good with `p_exit_bad`,
/// producing the correlated loss runs that plain Bernoulli loss cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) evaluated once per message sent.
    pub p_enter_bad: f64,
    /// P(bad → good) evaluated once per message sent.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Creates a channel from explicit transition and loss probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} {p} out of range");
        }
        GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad, in_bad: false }
    }

    /// A bursty channel with the given long-run mean loss rate: the bad
    /// state drops 50% of messages and lasts ~4 messages on average, and
    /// the entry probability is solved so the stationary loss equals
    /// `mean`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mean < 0.5`.
    #[must_use]
    pub fn with_mean_loss(mean: f64) -> Self {
        assert!(mean > 0.0 && mean < 0.5, "mean burst loss {mean} out of (0, 0.5)");
        let (loss_bad, p_exit_bad) = (0.5, 0.25);
        // Stationary P(bad) = p_enter / (p_enter + p_exit); mean loss =
        // P(bad) * loss_bad.
        let pi_bad = mean / loss_bad;
        let p_enter_bad = pi_bad * p_exit_bad / (1.0 - pi_bad);
        GilbertElliott::new(p_enter_bad, p_exit_bad, 0.0, loss_bad)
    }

    /// The stationary (long-run) loss rate of the channel.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom == 0.0 {
            // The chain never transitions: loss is whatever the start
            // state (good) yields.
            return self.loss_good;
        }
        let pi_bad = self.p_enter_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }

    /// Advances the chain one message and returns whether it is dropped.
    fn step(&mut self, rng: &mut Xoshiro256) -> bool {
        if self.in_bad {
            if rng.next_bool(self.p_exit_bad) {
                self.in_bad = false;
            }
        } else if rng.next_bool(self.p_enter_bad) {
            self.in_bad = true;
        }
        rng.next_bool(if self.in_bad { self.loss_bad } else { self.loss_good })
    }
}

/// The direction of a scripted churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The node joins mid-match: offline before `at_ms`, online after.
    Join,
    /// The node departs: online before `at_ms`, offline from `at_ms` on.
    Leave,
}

/// A scripted mid-match membership change. The network layer only *gates
/// delivery* — a joiner's slot drops all traffic before its join instant,
/// a leaver's from its unplug instant — while the driver (deathmatch,
/// e2e harness) reads [`FaultPlan::churn`] to run the protocol side:
/// lobby admission + `Join` announcement at a join, and a `Leave`
/// announcement far enough *before* a leave's `at_ms` that the departure
/// is roster-applied by the time the node unplugs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// The joining or leaving node.
    pub node: NodeId,
    /// Join or leave.
    pub kind: ChurnKind,
    /// The virtual millisecond the node appears (join) or unplugs
    /// (leave).
    pub at_ms: f64,
}

/// A node-silence window: the node neither sends nor receives during
/// `[from_ms, to_ms)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First virtual millisecond of silence (inclusive).
    pub from_ms: f64,
    /// End of the window (exclusive).
    pub to_ms: f64,
}

/// A network split: while open, messages between `island` members and
/// everyone else are dropped (traffic within either side still flows).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// First virtual millisecond of the split (inclusive).
    pub from_ms: f64,
    /// End of the split (exclusive).
    pub to_ms: f64,
    /// One side of the split; all other nodes form the other side.
    pub island: Vec<NodeId>,
}

impl PartitionWindow {
    fn severs(&self, a: NodeId, b: NodeId, now_ms: f64) -> bool {
        if now_ms < self.from_ms || now_ms >= self.to_ms {
            return false;
        }
        self.island.contains(&a) != self.island.contains(&b)
    }
}

/// A deterministic bundle of network faults, attached to a
/// [`crate::SimNetwork`] via [`crate::SimNetwork::set_fault_plan`].
///
/// # Examples
///
/// ```
/// use watchmen_net::fault::{FaultPlan, GilbertElliott};
/// use watchmen_net::{latency, SimNetwork};
///
/// let plan = FaultPlan::new(7)
///     .with_burst_loss(GilbertElliott::with_mean_loss(0.05))
///     .with_duplication(0.01)
///     .with_reordering(0.25, 20.0)
///     .with_crash(3, 1_000.0, 2_000.0);
/// let mut net: SimNetwork<u32> = SimNetwork::new(8, latency::constant(5.0), 0.0, 1);
/// net.set_fault_plan(plan);
/// net.send(0, 1, 42, 90);
/// net.advance_to(100.0);
/// net.stats().assert_invariant("faulted send");
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    burst: Option<GilbertElliott>,
    duplicate_rate: f64,
    reorder_rate: f64,
    reorder_extra_ms: f64,
    crashes: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
    churn: Vec<ChurnEvent>,
    rng: Xoshiro256,
}

impl FaultPlan {
    /// An empty (no-fault) plan with its own deterministic RNG stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            burst: None,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            reorder_extra_ms: 0.0,
            crashes: Vec::new(),
            partitions: Vec::new(),
            churn: Vec::new(),
            rng: Xoshiro256::seed_from(seed, 0xfau64 << 32),
        }
    }

    /// Adds a Gilbert–Elliott burst-loss channel.
    #[must_use]
    pub fn with_burst_loss(mut self, channel: GilbertElliott) -> Self {
        self.burst = Some(channel);
        self
    }

    /// Duplicates each message with probability `rate` (the copy gets an
    /// independently-sampled latency).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn with_duplication(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "duplication rate {rate} out of range");
        self.duplicate_rate = rate;
        self
    }

    /// Delays each message by up to `extra_ms` additional milliseconds
    /// with probability `rate`, reordering it past later sends.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `extra_ms` is negative.
    #[must_use]
    pub fn with_reordering(mut self, rate: f64, extra_ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "reorder rate {rate} out of range");
        assert!(extra_ms >= 0.0, "reorder delay must be non-negative");
        self.reorder_rate = rate;
        self.reorder_extra_ms = extra_ms;
        self
    }

    /// Silences `node` for `[from_ms, to_ms)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted.
    #[must_use]
    pub fn with_crash(mut self, node: NodeId, from_ms: f64, to_ms: f64) -> Self {
        assert!(from_ms <= to_ms, "crash window inverted");
        self.crashes.push(CrashWindow { node, from_ms, to_ms });
        self
    }

    /// Splits `island` from the rest of the network for `[from_ms, to_ms)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted.
    #[must_use]
    pub fn with_partition(mut self, from_ms: f64, to_ms: f64, island: Vec<NodeId>) -> Self {
        assert!(from_ms <= to_ms, "partition window inverted");
        self.partitions.push(PartitionWindow { from_ms, to_ms, island });
        self
    }

    /// Scripts a mid-match join: `node`'s slot is offline (all traffic
    /// gated) before `at_ms` and live from `at_ms` on.
    #[must_use]
    pub fn with_join(mut self, node: NodeId, at_ms: f64) -> Self {
        self.churn.push(ChurnEvent { node, kind: ChurnKind::Join, at_ms });
        self
    }

    /// Scripts a departure: `node` unplugs at `at_ms` and its traffic is
    /// gated from then on. Drivers announce the protocol-level `Leave`
    /// early enough that the departure is roster-applied by `at_ms`.
    #[must_use]
    pub fn with_leave(mut self, node: NodeId, at_ms: f64) -> Self {
        self.churn.push(ChurnEvent { node, kind: ChurnKind::Leave, at_ms });
        self
    }

    /// The scripted churn events, in insertion order.
    #[must_use]
    pub fn churn(&self) -> &[ChurnEvent] {
        &self.churn
    }

    /// Returns `true` if a churn event gates `node` at `now_ms`: before
    /// its join instant, or at/after its unplug instant. Both boundaries
    /// are half-open on the offline side — a joiner is live at exactly
    /// `at_ms`, a leaver gone at exactly `at_ms`.
    #[must_use]
    pub fn is_offline(&self, node: NodeId, now_ms: f64) -> bool {
        self.churn.iter().any(|c| {
            c.node == node
                && match c.kind {
                    ChurnKind::Join => now_ms < c.at_ms,
                    ChurnKind::Leave => now_ms >= c.at_ms,
                }
        })
    }

    /// The scripted crash windows.
    #[must_use]
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Returns `true` if `node` is inside one of its crash windows.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId, now_ms: f64) -> bool {
        self.crashes.iter().any(|c| c.node == node && now_ms >= c.from_ms && now_ms < c.to_ms)
    }

    /// Returns `true` if an open partition separates `a` from `b`.
    #[must_use]
    pub fn severs(&self, a: NodeId, b: NodeId, now_ms: f64) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, now_ms))
    }

    /// Advances the burst channel one message; `true` means drop.
    pub(crate) fn burst_drop(&mut self) -> bool {
        match self.burst.as_mut() {
            Some(ge) => ge.step(&mut self.rng),
            None => false,
        }
    }

    /// Samples whether this message gets an extra duplicate copy.
    pub(crate) fn duplicate(&mut self) -> bool {
        self.duplicate_rate > 0.0 && self.rng.next_bool(self.duplicate_rate)
    }

    /// Extra delay for this delivery (0 when the reorder fault does not
    /// fire).
    pub(crate) fn reorder_extra(&mut self) -> f64 {
        if self.reorder_rate > 0.0 && self.rng.next_bool(self.reorder_rate) {
            self.rng.next_f64() * self.reorder_extra_ms
        } else {
            0.0
        }
    }

    /// Builds a plan from the `WATCHMEN_FAULTS` environment variable, or
    /// `None` when it is unset or empty. See [`FaultPlan::from_spec`] for
    /// the format; a malformed spec panics with the parse error (a typo'd
    /// fault experiment should fail loudly, not run clean).
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but does not parse.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("WATCHMEN_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match Self::from_spec(&spec, 0xfa017) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("WATCHMEN_FAULTS: {e}"),
        }
    }

    /// Parses a comma-separated fault spec:
    ///
    /// * `loss=0.05` — Gilbert–Elliott burst loss with 5% mean.
    /// * `dup=0.01` — 1% duplication.
    /// * `reorder=0.25` — 25% of messages get extra delay (default 20 ms;
    ///   override with `reorder_ms=40`).
    /// * `crash=3@1000..2000` — node 3 silent from t=1000 ms to 2000 ms
    ///   (repeatable).
    /// * `partition=0+1+2@500..900` — nodes {0,1,2} split from the rest.
    /// * `join=5@2000` — node 5 joins mid-match at t=2000 ms: its slot is
    ///   offline before that instant (repeatable).
    /// * `leave=3@4000` — node 3 unplugs at t=4000 ms; its traffic is
    ///   gated from then on (repeatable).
    /// * `seed=7` — reseed the fault RNG.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_spec(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        let mut reorder_rate = 0.0;
        let mut reorder_ms = 20.0;
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let parse_f64 =
                |v: &str| v.parse::<f64>().map_err(|_| format!("bad number {v:?} for {key}"));
            match key {
                "loss" => {
                    plan.burst = Some(GilbertElliott::with_mean_loss(parse_f64(value)?));
                }
                "dup" => plan.duplicate_rate = parse_f64(value)?,
                "reorder" => reorder_rate = parse_f64(value)?,
                "reorder_ms" => reorder_ms = parse_f64(value)?,
                "seed" => {
                    let s = value.parse::<u64>().map_err(|_| format!("bad seed {value:?}"))?;
                    plan.rng = Xoshiro256::seed_from(s, 0xfau64 << 32);
                }
                "crash" => {
                    let (node, window) = parse_at(value)?;
                    let (from, to) = parse_range(window)?;
                    plan.crashes.push(CrashWindow {
                        node: node.parse().map_err(|_| format!("bad crash node {node:?}"))?,
                        from_ms: from,
                        to_ms: to,
                    });
                }
                "join" | "leave" => {
                    let (node, at) = parse_at(value)?;
                    let node = node.parse().map_err(|_| format!("bad {key} node {node:?}"))?;
                    let at_ms = at.parse::<f64>().map_err(|_| format!("bad {key} time {at:?}"))?;
                    let kind = if key == "join" { ChurnKind::Join } else { ChurnKind::Leave };
                    plan.churn.push(ChurnEvent { node, kind, at_ms });
                }
                "partition" => {
                    let (nodes, window) = parse_at(value)?;
                    let (from, to) = parse_range(window)?;
                    let island = nodes
                        .split('+')
                        .map(|n| n.parse().map_err(|_| format!("bad partition node {n:?}")))
                        .collect::<Result<Vec<NodeId>, String>>()?;
                    plan.partitions.push(PartitionWindow { from_ms: from, to_ms: to, island });
                }
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        if reorder_rate > 0.0 {
            plan = plan.with_reordering(reorder_rate, reorder_ms);
        }
        Ok(plan)
    }
}

fn parse_at(value: &str) -> Result<(&str, &str), String> {
    value.split_once('@').ok_or_else(|| format!("expected who@from..to, got {value:?}"))
}

fn parse_range(window: &str) -> Result<(f64, f64), String> {
    let (from, to) =
        window.split_once("..").ok_or_else(|| format!("expected from..to, got {window:?}"))?;
    let from = from.parse::<f64>().map_err(|_| format!("bad window start {from:?}"))?;
    let to = to.parse::<f64>().map_err(|_| format!("bad window end {to:?}"))?;
    if from > to {
        return Err(format!("inverted window {window:?}"));
    }
    Ok((from, to))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gilbert_elliott_mean_loss_matches_empirical_rate() {
        let mut ge = GilbertElliott::with_mean_loss(0.05);
        let expected = ge.mean_loss();
        assert!((expected - 0.05).abs() < 1e-12, "analytic mean {expected}");
        let mut rng = Xoshiro256::seed_from(1, 2);
        let trials = 200_000;
        let dropped = (0..trials).filter(|_| ge.step(&mut rng)).count();
        let rate = dropped as f64 / f64::from(trials);
        assert!((0.04..0.06).contains(&rate), "empirical loss {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Consecutive drops should be far more common than under an
        // independent Bernoulli process with the same mean.
        let mut ge = GilbertElliott::with_mean_loss(0.05);
        let mut rng = Xoshiro256::seed_from(3, 4);
        let mut drops = Vec::with_capacity(100_000);
        for _ in 0..100_000 {
            drops.push(ge.step(&mut rng));
        }
        let pairs = drops.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let singles = drops.iter().filter(|&&d| d).count() as f64;
        // P(drop | previous dropped) under Bernoulli(0.05) would be 0.05;
        // the bad state's 0.5 loss with mean dwell 4 pushes it far higher.
        let conditional = pairs / singles;
        assert!(conditional > 0.2, "loss not bursty: P(drop|drop) = {conditional:.3}");
    }

    #[test]
    fn crash_and_partition_windows_are_half_open() {
        let plan =
            FaultPlan::new(1).with_crash(2, 100.0, 200.0).with_partition(50.0, 60.0, vec![0, 1]);
        assert!(!plan.is_crashed(2, 99.9));
        assert!(plan.is_crashed(2, 100.0));
        assert!(plan.is_crashed(2, 199.9));
        assert!(!plan.is_crashed(2, 200.0));
        assert!(!plan.is_crashed(3, 150.0));
        assert!(plan.severs(0, 2, 55.0));
        assert!(plan.severs(2, 1, 55.0));
        assert!(!plan.severs(0, 1, 55.0), "island-internal traffic flows");
        assert!(!plan.severs(2, 3, 55.0), "mainland-internal traffic flows");
        assert!(!plan.severs(0, 2, 60.0), "window closed");
    }

    #[test]
    fn spec_parses_every_knob() {
        let plan = FaultPlan::from_spec(
            "loss=0.05, dup=0.01, reorder=0.25, reorder_ms=40, crash=3@1000..2000, \
             partition=0+1@500..900, join=5@2000, leave=4@4000, seed=9",
            1,
        )
        .unwrap();
        assert!((plan.burst.as_ref().unwrap().mean_loss() - 0.05).abs() < 1e-12);
        assert_eq!(plan.duplicate_rate, 0.01);
        assert_eq!(plan.reorder_rate, 0.25);
        assert_eq!(plan.reorder_extra_ms, 40.0);
        assert_eq!(plan.crashes, vec![CrashWindow { node: 3, from_ms: 1000.0, to_ms: 2000.0 }]);
        assert!(plan.severs(0, 2, 600.0));
        assert_eq!(
            plan.churn(),
            &[
                ChurnEvent { node: 5, kind: ChurnKind::Join, at_ms: 2000.0 },
                ChurnEvent { node: 4, kind: ChurnKind::Leave, at_ms: 4000.0 },
            ]
        );
    }

    #[test]
    fn spec_rejects_malformed_entries() {
        for bad in [
            "nonsense",
            "loss=abc",
            "crash=3",
            "crash=x@1..2",
            "crash=1@5..2",
            "zap=1",
            "join=5",
            "join=x@10",
            "leave=3@soon",
        ] {
            assert!(FaultPlan::from_spec(bad, 1).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn churn_gating_is_half_open() {
        let plan = FaultPlan::new(1).with_join(5, 2000.0).with_leave(3, 4000.0);
        assert!(plan.is_offline(5, 1999.9), "joiner offline before its instant");
        assert!(!plan.is_offline(5, 2000.0), "joiner live at exactly its instant");
        assert!(!plan.is_offline(3, 3999.9), "leaver live until it unplugs");
        assert!(plan.is_offline(3, 4000.0), "leaver gone at exactly its instant");
        assert!(!plan.is_offline(0, 0.0), "unscripted nodes never gated");
    }

    #[test]
    fn empty_spec_is_a_clean_plan() {
        let mut plan = FaultPlan::from_spec("", 1).unwrap();
        assert!(!plan.burst_drop());
        assert!(!plan.duplicate());
        assert_eq!(plan.reorder_extra(), 0.0);
    }
}
