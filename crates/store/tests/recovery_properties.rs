//! Randomized recovery properties for the durable reputation store,
//! driven by the workspace's deterministic [`Xoshiro256`] generator.
//!
//! Every case scripts a random operation stream, random commit batch
//! boundaries, random compaction pressure and a random crash point,
//! then checks the store's contract over the surviving media:
//!
//! * replay is idempotent — folding the same records twice is a no-op;
//! * recovery over a snapshot + WAL tail reaches the state a full-log
//!   replay would (compaction changes representation, never meaning);
//! * after any crash the recovered counts are exactly a replay of an
//!   operation prefix that covers everything acknowledged;
//! * acknowledged bans survive; a crash never invents a ban; one
//!   commit after recovery converges the ban set.

use watchmen_crypto::rng::Xoshiro256;
use watchmen_store::{
    scan_log, Dir, FaultDir, FaultSpec, MemDir, RepState, ReputationStore, StorePolicy,
    StoreRecord, WAL_FILE,
};

const CASES: u64 = 64;

/// Reports per operation — fixed so the recovered operation count can
/// be read off the report total, as the crash-loop harness does.
const REPORTS_PER_OP: u64 = 10;

/// One scripted operation: `(identity, ok, failed)`.
type Op = (u64, u32, u32);

/// A random stream over a small identity space so identities repeat and
/// bans actually trip. Roughly a third of identities cheat hard.
fn arb_ops(rng: &mut Xoshiro256, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let identity = 100 + rng.next_range(12);
            let failed = if identity.is_multiple_of(3) {
                2 + rng.next_range(3) as u32
            } else {
                rng.next_range(2) as u32
            };
            (identity, REPORTS_PER_OP as u32 - failed, failed)
        })
        .collect()
}

/// Counts `(identity, ok, failed)` from a replay of `ops[..k]`.
fn reference_counts(ops: &[Op], k: usize) -> Vec<(u64, u64, u64)> {
    let mut state = RepState::new();
    for (seq, &(identity, ok, failed)) in ops[..k].iter().enumerate() {
        state.apply(&StoreRecord::Outcome { seq: seq as u64 + 1, identity, ok, failed });
    }
    state.iter().map(|(&id, e)| (id, e.ok, e.failed)).collect()
}

/// Identities whose running counts ever satisfy the ban policy during
/// a full replay of `ops[..k]` — the only identities a store fed that
/// prefix may ever ban.
fn ever_bannable(policy: StorePolicy, ops: &[Op], k: usize) -> Vec<u64> {
    let mut state = RepState::new();
    let mut bannable = Vec::new();
    for (seq, &(identity, ok, failed)) in ops[..k].iter().enumerate() {
        state.apply(&StoreRecord::Outcome { seq: seq as u64 + 1, identity, ok, failed });
        let entry = state.entry(identity).expect("just applied");
        if policy.should_ban(entry.ok, entry.failed) && !bannable.contains(&identity) {
            bannable.push(identity);
        }
    }
    bannable.sort_unstable();
    bannable
}

/// Whole operations a recovered state reflects (every op lands exactly
/// [`REPORTS_PER_OP`] reports).
fn ops_applied(state: &RepState) -> usize {
    let reports: u64 = state.iter().map(|(_, e)| e.total()).sum();
    assert_eq!(reports % REPORTS_PER_OP, 0, "recovery applied a partial record");
    (reports / REPORTS_PER_OP) as usize
}

/// Drives `ops` into a store over faulty media until the scripted
/// crash kills a commit. Returns `(acked_ops, acked_bans)`.
fn drive_until_crash(
    store: &mut ReputationStore,
    ops: &[Op],
    rng: &mut Xoshiro256,
    compact_bytes: u64,
) -> (usize, Vec<u64>) {
    let mut acked_ops = 0;
    let mut acked_bans = Vec::new();
    for (i, &(identity, ok, failed)) in ops.iter().enumerate() {
        store.note_outcome(identity, ok, failed);
        if i + 1 == ops.len() || rng.next_bool(0.3) {
            match store.commit_and_maybe_compact(compact_bytes) {
                Ok(receipt) => {
                    acked_ops = i + 1;
                    acked_bans.extend(receipt.new_bans.iter().map(|&(id, _)| id));
                }
                Err(_) => break, // media crashed mid-commit
            }
        }
    }
    acked_bans.sort_unstable();
    acked_bans.dedup();
    (acked_ops, acked_bans)
}

#[test]
fn log_replay_is_idempotent() {
    let mut rng = Xoshiro256::seed_from(2013, 0xA1);
    for case in 0..CASES {
        let len = 8 + rng.next_range(40) as usize;
        let ops = arb_ops(&mut rng, len);
        let dir = MemDir::new();
        let (mut store, _) = ReputationStore::open(Box::new(dir.clone()), StorePolicy::default())
            .expect("open fresh store");
        for &(identity, ok, failed) in &ops {
            store.note_outcome(identity, ok, failed);
        }
        store.commit().expect("commit on healthy media");
        drop(store);

        let mut media = dir.clone();
        let wal = media.read(WAL_FILE).expect("read wal").expect("wal exists");
        let (records, report) = scan_log(&wal);
        assert_eq!(report.corrupt_episodes, 0, "case {case}: clean log scans clean");

        let mut once = RepState::new();
        for record in &records {
            assert!(once.apply(record), "case {case}: fresh records all apply");
        }
        let digest = once.digest();
        // Folding the identical records again — a double replay of the
        // same log — changes nothing and reports every record stale.
        for record in &records {
            assert!(!once.apply(record), "case {case}: replayed record must be stale");
        }
        assert_eq!(once.digest(), digest, "case {case}: double replay is a no-op");
    }
}

#[test]
fn snapshot_plus_tail_recovery_equals_full_log_replay() {
    let mut rng = Xoshiro256::seed_from(2013, 0xB2);
    for case in 0..CASES {
        let len = 20 + rng.next_range(120) as usize;
        let ops = arb_ops(&mut rng, len);
        let compacted_media = MemDir::new();
        let full_media = MemDir::new();
        let policy = StorePolicy::default();
        let (mut compacted, _) = ReputationStore::open(Box::new(compacted_media.clone()), policy)
            .expect("open compacted store");
        let (mut full, _) =
            ReputationStore::open(Box::new(full_media.clone()), policy).expect("open full store");

        // Identical streams and batch boundaries; only one compacts
        // (aggressively — the 1-byte threshold compacts every commit).
        for (i, &(identity, ok, failed)) in ops.iter().enumerate() {
            compacted.note_outcome(identity, ok, failed);
            full.note_outcome(identity, ok, failed);
            if i + 1 == ops.len() || rng.next_bool(0.25) {
                compacted.commit_and_maybe_compact(1).expect("commit+compact");
                full.commit().expect("commit");
            }
        }
        assert!(compacted.stats().compactions > 0, "case {case}: compaction exercised");
        drop(compacted);
        drop(full);

        let (a, _) = ReputationStore::open(Box::new(compacted_media.clone()), policy)
            .expect("reopen compacted");
        let (b, _) =
            ReputationStore::open(Box::new(full_media.clone()), policy).expect("reopen full");
        assert_eq!(
            a.state().digest(),
            b.state().digest(),
            "case {case}: snapshot+tail recovery diverged from full-log replay",
        );
    }
}

#[test]
fn crash_recovery_is_a_prefix_replay_covering_every_ack() {
    let mut rng = Xoshiro256::seed_from(2013, 0xC3);
    for case in 0..CASES {
        let len = 20 + rng.next_range(120) as usize;
        let ops = arb_ops(&mut rng, len);
        let media = MemDir::new();
        let policy = StorePolicy::default();
        let spec = FaultSpec {
            seed: 2013 ^ case,
            short_permille: 200,
            crash_at_op: 1 + rng.next_range(3 * ops.len() as u64),
            ..FaultSpec::default()
        };
        let compact_bytes = if rng.next_bool(0.5) { 512 } else { u64::MAX };
        let (mut store, _) =
            ReputationStore::open(Box::new(FaultDir::new(media.clone(), spec)), policy)
                .expect("open over faulty media");
        let (acked_ops, acked_bans) = drive_until_crash(&mut store, &ops, &mut rng, compact_bytes);
        drop(store);

        let (mut recovered, _) =
            ReputationStore::open(Box::new(media.clone()), policy).expect("recover after crash");
        let k = ops_applied(recovered.state());
        assert!(k >= acked_ops, "case {case}: recovery lost acked work ({k} < {acked_ops} ops)",);
        assert!(k <= ops.len(), "case {case}: recovery invented work");

        // Counts are exactly a prefix replay — nothing reordered,
        // nothing half-applied.
        let counts: Vec<(u64, u64, u64)> =
            recovered.state().iter().map(|(&id, e)| (id, e.ok, e.failed)).collect();
        assert_eq!(counts, reference_counts(&ops, k), "case {case}: counts not a prefix replay");

        // Acked bans survived; no ban exists the prefix cannot justify.
        let bannable = ever_bannable(policy, &ops, k);
        for &identity in &acked_bans {
            assert!(recovered.is_banned(identity), "case {case}: acked ban of {identity} lost");
        }
        for identity in recovered.banned_identities() {
            assert!(bannable.contains(&identity), "case {case}: false ban of {identity}");
        }

        // One commit converges the ban set to exactly the bannable set
        // (re-staged torn bans land; nothing else appears).
        recovered.commit().expect("post-recovery commit on healthy media");
        assert_eq!(
            recovered.banned_identities(),
            bannable,
            "case {case}: ban set did not converge after recovery",
        );
    }
}

#[test]
fn bit_flipping_crashes_never_invent_state_and_recover_deterministically() {
    let mut rng = Xoshiro256::seed_from(2013, 0xD4);
    for case in 0..CASES {
        let len = 20 + rng.next_range(120) as usize;
        let ops = arb_ops(&mut rng, len);
        let media = MemDir::new();
        let policy = StorePolicy::default();
        let spec = FaultSpec {
            seed: 2013 ^ case,
            short_permille: 150,
            torn_replace_permille: 100,
            crash_at_op: 1 + rng.next_range(3 * ops.len() as u64),
            flip_bits: true,
            ..FaultSpec::default()
        };
        let (mut store, _) =
            ReputationStore::open(Box::new(FaultDir::new(media.clone(), spec)), policy)
                .expect("open over faulty media");
        let (acked_ops, acked_bans) = drive_until_crash(&mut store, &ops, &mut rng, 512);
        drop(store);

        // A flipped bit in the torn tail may corrupt a middle record,
        // so recovery can skip records — the result need not be a
        // clean prefix. The inviolable part of the contract: never
        // panic, never lose an ack, never exceed the full stream,
        // never invent a ban, and recover the same state every time.
        let (first, _) =
            ReputationStore::open(Box::new(media.clone()), policy).expect("recover after crash");
        let (second, _) =
            ReputationStore::open(Box::new(media.clone()), policy).expect("recover again");
        assert_eq!(
            first.state().digest(),
            second.state().digest(),
            "case {case}: recovery is not deterministic",
        );

        let acked = reference_counts(&ops, acked_ops);
        let full = reference_counts(&ops, ops.len());
        let at = |table: &[(u64, u64, u64)], id: u64| {
            table.iter().find(|&&(i, _, _)| i == id).map_or((0, 0), |&(_, ok, failed)| (ok, failed))
        };
        for (&identity, entry) in first.state().iter() {
            let (ok_floor, failed_floor) = at(&acked, identity);
            let (ok_ceil, failed_ceil) = at(&full, identity);
            assert!(
                entry.ok >= ok_floor && entry.failed >= failed_floor,
                "case {case}: acked counts of {identity} lost",
            );
            assert!(
                entry.ok <= ok_ceil && entry.failed <= failed_ceil,
                "case {case}: counts of {identity} exceed the full stream",
            );
        }
        for &identity in &acked_bans {
            assert!(first.is_banned(identity), "case {case}: acked ban of {identity} lost");
        }
        let bannable = ever_bannable(policy, &ops, ops.len());
        for identity in first.banned_identities() {
            assert!(bannable.contains(&identity), "case {case}: false ban of {identity}");
        }
    }
}
