//! The replayed reputation state and the ban policy.
//!
//! [`RepState`] is a pure fold over [`StoreRecord`]s: no I/O, no clock.
//! Replay is **idempotent** by construction — every record carries a
//! sequence number and the fold drops any record whose seq is not
//! strictly greater than the highest applied — which is what makes
//! recovery safe to run over a log that contains duplicated batches
//! (a commit retried after a failed fsync appends the same records,
//! same seqs, twice).

use std::collections::BTreeMap;

use watchmen_crypto::Sha256;

use crate::record::StoreRecord;

/// The store-side ban policy: the paper's threshold rule, applied to
/// the *cross-match* interaction totals instead of one match's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorePolicy {
    /// Ban when `ok / total` falls below this.
    pub ban_threshold: f64,
    /// Reports required before a ban can trigger.
    pub min_reports: u64,
}

impl Default for StorePolicy {
    fn default() -> Self {
        // The same calibration the lobby defaults to: a ≤5%
        // false-positive detector never drags an honest player under
        // 85% acceptable.
        StorePolicy { ban_threshold: 0.85, min_reports: 30 }
    }
}

impl StorePolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1)` or `min_reports`
    /// is zero.
    pub fn validate(&self) {
        assert!(
            self.ban_threshold > 0.0 && self.ban_threshold < 1.0,
            "ban_threshold {} out of range",
            self.ban_threshold
        );
        assert!(self.min_reports > 0, "min_reports must be positive");
    }

    /// Whether counts `(ok, failed)` satisfy the ban condition.
    #[must_use]
    pub fn should_ban(&self, ok: u64, failed: u64) -> bool {
        let total = ok + failed;
        total >= self.min_reports && (ok as f64 / total as f64) < self.ban_threshold
    }
}

/// One identity's durable standing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IdentityEntry {
    /// Interactions rated acceptable, across every match.
    pub ok: u64,
    /// Interactions rated failed, across every match.
    pub failed: u64,
    /// Whether a durable [`StoreRecord::Ban`] exists for this identity.
    pub banned: bool,
    /// The suspicion recorded with the ban, in permille (0 when not
    /// banned).
    pub ban_suspicion_permille: u32,
}

impl IdentityEntry {
    /// Total interactions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ok + self.failed
    }

    /// The failed proportion in `[0, 1]` (0 with no reports).
    #[must_use]
    pub fn suspicion(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.failed as f64 / self.total() as f64
        }
    }
}

/// The full replayed state: per-identity entries plus the replay
/// cursor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RepState {
    entries: BTreeMap<u64, IdentityEntry>,
    applied_seq: u64,
}

impl RepState {
    /// An empty state (applied seq 0: every valid record applies).
    #[must_use]
    pub fn new() -> Self {
        RepState::default()
    }

    /// Rebuilds a state from snapshot parts (used by snapshot decode).
    #[must_use]
    pub fn from_parts(entries: BTreeMap<u64, IdentityEntry>, applied_seq: u64) -> Self {
        RepState { entries, applied_seq }
    }

    /// The highest record sequence number folded in.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Identities tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no identity is tracked yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One identity's entry, if any reports exist.
    #[must_use]
    pub fn entry(&self, identity: u64) -> Option<&IdentityEntry> {
        self.entries.get(&identity)
    }

    /// Iterates entries in identity order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &IdentityEntry)> {
        self.entries.iter()
    }

    /// Whether a durable ban exists for `identity`.
    #[must_use]
    pub fn is_banned(&self, identity: u64) -> bool {
        self.entries.get(&identity).is_some_and(|e| e.banned)
    }

    /// Every banned identity, ascending.
    #[must_use]
    pub fn banned_identities(&self) -> Vec<u64> {
        self.entries.iter().filter(|(_, e)| e.banned).map(|(&id, _)| id).collect()
    }

    /// Folds one record in. Returns `false` (and changes nothing) for
    /// records at-or-below the applied cursor — the idempotence rule.
    pub fn apply(&mut self, record: &StoreRecord) -> bool {
        if record.seq() <= self.applied_seq {
            return false;
        }
        self.applied_seq = record.seq();
        let entry = self.entries.entry(record.identity()).or_default();
        match *record {
            StoreRecord::Outcome { ok, failed, .. } => {
                entry.ok += u64::from(ok);
                entry.failed += u64::from(failed);
            }
            StoreRecord::Ban { suspicion_permille, .. } => {
                entry.banned = true;
                entry.ban_suspicion_permille = suspicion_permille;
            }
        }
        true
    }

    /// A digest over the interaction counts only (identity, ok, failed
    /// per entry) — the crash-loop's convergence check, deliberately
    /// excluding ban flags so acked-ban and no-false-ban assertions can
    /// be made separately and exactly.
    #[must_use]
    pub fn counts_digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&(self.entries.len() as u64).to_le_bytes());
        for (id, e) in &self.entries {
            h.update(&id.to_le_bytes());
            h.update(&e.ok.to_le_bytes());
            h.update(&e.failed.to_le_bytes());
        }
        h.finalize()
    }

    /// A digest over the full state (counts, ban flags, applied seq).
    #[must_use]
    pub fn digest(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.applied_seq.to_le_bytes());
        h.update(&(self.entries.len() as u64).to_le_bytes());
        for (id, e) in &self.entries {
            h.update(&id.to_le_bytes());
            h.update(&e.ok.to_le_bytes());
            h.update(&e.failed.to_le_bytes());
            h.update(&[u8::from(e.banned)]);
            h.update(&e.ban_suspicion_permille.to_le_bytes());
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(seq: u64, identity: u64, ok: u32, failed: u32) -> StoreRecord {
        StoreRecord::Outcome { seq, identity, ok, failed }
    }

    #[test]
    fn apply_folds_counts_and_bans() {
        let mut state = RepState::new();
        assert!(state.apply(&outcome(1, 7, 9, 1)));
        assert!(state.apply(&outcome(2, 7, 3, 7)));
        assert!(state.apply(&StoreRecord::Ban { seq: 3, identity: 7, suspicion_permille: 400 }));
        let entry = state.entry(7).expect("tracked");
        assert_eq!((entry.ok, entry.failed), (12, 8));
        assert!(entry.banned);
        assert_eq!(entry.suspicion(), 0.4);
        assert_eq!(state.applied_seq(), 3);
        assert_eq!(state.banned_identities(), vec![7]);
    }

    #[test]
    fn replay_is_idempotent_under_duplicates() {
        let records = [
            outcome(1, 1, 10, 0),
            outcome(2, 2, 2, 8),
            StoreRecord::Ban { seq: 3, identity: 2, suspicion_permille: 800 },
        ];
        let mut once = RepState::new();
        for r in &records {
            assert!(once.apply(r));
        }
        // A retried batch duplicates the records verbatim; replaying the
        // doubled log must land on the identical state.
        let mut doubled = RepState::new();
        for r in records.iter().chain(records.iter()) {
            doubled.apply(r);
        }
        assert_eq!(once, doubled);
        assert_eq!(once.digest(), doubled.digest());
        // And stale records are rejected outright.
        assert!(!doubled.apply(&outcome(2, 9, 1, 1)));
        assert!(doubled.entry(9).is_none());
    }

    #[test]
    fn gaps_in_seq_are_tolerated() {
        // A corrupted middle record gets skipped by recovery resync; the
        // fold accepts the gap and keeps the cursor honest.
        let mut state = RepState::new();
        assert!(state.apply(&outcome(1, 1, 5, 0)));
        assert!(state.apply(&outcome(5, 1, 5, 0)));
        assert_eq!(state.applied_seq(), 5);
        assert_eq!(state.entry(1).expect("tracked").ok, 10);
    }

    #[test]
    fn policy_matches_threshold_reputation_semantics() {
        let policy = StorePolicy::default();
        policy.validate();
        assert!(!policy.should_ban(0, 0), "no reports, no ban");
        assert!(!policy.should_ban(0, 29), "below min_reports");
        assert!(policy.should_ban(0, 30));
        assert!(policy.should_ban(15, 15), "50% acceptable is under 85%");
        assert!(!policy.should_ban(100, 5), "95% acceptable stays clean");
    }

    #[test]
    #[should_panic(expected = "ban_threshold")]
    fn bad_policy_threshold_panics() {
        StorePolicy { ban_threshold: 1.5, ..StorePolicy::default() }.validate();
    }

    #[test]
    fn digests_separate_counts_from_bans() {
        let mut a = RepState::new();
        let mut b = RepState::new();
        a.apply(&outcome(1, 3, 5, 5));
        b.apply(&outcome(1, 3, 5, 5));
        b.apply(&StoreRecord::Ban { seq: 2, identity: 3, suspicion_permille: 500 });
        assert_eq!(a.counts_digest(), b.counts_digest(), "counts ignore bans");
        assert_ne!(a.digest(), b.digest(), "full digest sees bans");
    }
}
