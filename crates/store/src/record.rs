//! The durable record format: checksummed, length-prefixed frames.
//!
//! Every entry in the write-ahead log is one frame:
//!
//! ```text
//! ┌─────────────┬──────────────┬──────────────┬─────────────────┐
//! │ magic (u32) │ len (u32 LE) │ crc32 (u32)  │ payload (len B) │
//! └─────────────┴──────────────┴──────────────┴─────────────────┘
//! ```
//!
//! The CRC (IEEE 802.3, the zlib polynomial) covers the payload; the
//! magic lets recovery *resync* after a corrupted record by scanning
//! forward for the next plausible frame instead of abandoning the rest
//! of the log. Payloads are fixed-width [`StoreRecord`] encodings: a
//! sequence number (the idempotence key — replaying a record whose seq
//! the state has already applied is a no-op), a kind tag, the 64-bit
//! cross-match identity (a player's public key scalar), and two
//! kind-specific words.

/// Frame magic: `WREP` little-endian ("Watchmen REPutation").
pub const FRAME_MAGIC: u32 = 0x5052_4557;

/// Fixed payload width of every record kind.
pub const PAYLOAD_LEN: usize = 25;

/// Full frame width (magic + len + crc + payload).
pub const FRAME_LEN: usize = 12 + PAYLOAD_LEN;

/// One durable reputation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreRecord {
    /// A match's aggregated interaction outcome for one identity: how
    /// many of its interactions the match rated acceptable vs failed
    /// (the paper's per-player tagging, folded per match).
    Outcome {
        /// Record sequence number (strictly increasing per store).
        seq: u64,
        /// The subject's cross-match identity (public-key scalar).
        identity: u64,
        /// Interactions rated acceptable.
        ok: u32,
        /// Interactions rated failed (suspicious).
        failed: u32,
    },
    /// A durable ban decision for one identity. Bans are explicit
    /// records — recovery never *invents* one from counts, so a torn
    /// tail can lose an unacknowledged ban but can never fabricate a
    /// false one.
    Ban {
        /// Record sequence number (strictly increasing per store).
        seq: u64,
        /// The banned identity.
        identity: u64,
        /// The suspicion that triggered the ban, in permille.
        suspicion_permille: u32,
    },
}

impl StoreRecord {
    /// The record's sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match *self {
            StoreRecord::Outcome { seq, .. } | StoreRecord::Ban { seq, .. } => seq,
        }
    }

    /// The record's subject identity.
    #[must_use]
    pub fn identity(&self) -> u64 {
        match *self {
            StoreRecord::Outcome { identity, .. } | StoreRecord::Ban { identity, .. } => identity,
        }
    }

    /// Encodes the fixed-width payload (no frame header).
    #[must_use]
    pub fn encode_payload(&self) -> [u8; PAYLOAD_LEN] {
        let mut out = [0u8; PAYLOAD_LEN];
        let (seq, kind, identity, a, b) = match *self {
            StoreRecord::Outcome { seq, identity, ok, failed } => (seq, 1u8, identity, ok, failed),
            StoreRecord::Ban { seq, identity, suspicion_permille } => {
                (seq, 2u8, identity, suspicion_permille, 0)
            }
        };
        out[0..8].copy_from_slice(&seq.to_le_bytes());
        out[8] = kind;
        out[9..17].copy_from_slice(&identity.to_le_bytes());
        out[17..21].copy_from_slice(&a.to_le_bytes());
        out[21..25].copy_from_slice(&b.to_le_bytes());
        out
    }

    /// Decodes a fixed-width payload. `None` on a bad kind tag or
    /// width — corruption the CRC happened not to catch.
    #[must_use]
    pub fn decode_payload(payload: &[u8]) -> Option<Self> {
        if payload.len() != PAYLOAD_LEN {
            return None;
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
        let kind = payload[8];
        let identity = u64::from_le_bytes(payload[9..17].try_into().ok()?);
        let a = u32::from_le_bytes(payload[17..21].try_into().ok()?);
        let b = u32::from_le_bytes(payload[21..25].try_into().ok()?);
        match kind {
            1 => Some(StoreRecord::Outcome { seq, identity, ok: a, failed: b }),
            2 if b == 0 => Some(StoreRecord::Ban { seq, identity, suspicion_permille: a }),
            _ => None,
        }
    }

    /// Encodes the record as a full frame (header + payload).
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(FRAME_LEN);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Why a frame failed to decode at some offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than a full frame needs — a torn tail (or a
    /// resync that ran off the end).
    Truncated,
    /// The magic word does not match.
    BadMagic,
    /// The length field is not a plausible payload length.
    BadLength,
    /// The checksum does not match the payload.
    BadCrc,
    /// CRC passed but the payload's kind tag is invalid.
    BadPayload,
}

/// Tries to decode one frame at the start of `bytes`. On success returns
/// the record and the number of bytes consumed.
///
/// # Errors
///
/// A [`FrameError`] naming the first violated invariant.
pub fn decode_frame(bytes: &[u8]) -> Result<(StoreRecord, usize), FrameError> {
    if bytes.len() < 12 {
        return Err(FrameError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if len != PAYLOAD_LEN {
        return Err(FrameError::BadLength);
    }
    if bytes.len() < 12 + len {
        return Err(FrameError::Truncated);
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..12 + len];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    match StoreRecord::decode_payload(payload) {
        Some(record) => Ok((record, 12 + len)),
        None => Err(FrameError::BadPayload),
    }
}

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected), computed bytewise
/// over a small lazily-derived table — std-only, fast enough for the
/// 25-byte payloads the store frames.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        let mut cur = (crc ^ u32::from(b)) & 0xFF;
        for _ in 0..8 {
            cur = if cur & 1 != 0 { 0xEDB8_8320 ^ (cur >> 1) } else { cur >> 1 };
        }
        crc = cur ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn records_round_trip_through_frames() {
        let records = [
            StoreRecord::Outcome { seq: 1, identity: 0xDEAD_BEEF, ok: 28, failed: 2 },
            StoreRecord::Ban { seq: 2, identity: 7, suspicion_permille: 412 },
            StoreRecord::Outcome { seq: u64::MAX, identity: u64::MAX, ok: u32::MAX, failed: 0 },
        ];
        for record in records {
            let frame = record.encode_frame();
            assert_eq!(frame.len(), FRAME_LEN);
            let (decoded, used) = decode_frame(&frame).expect("round trip");
            assert_eq!(decoded, record);
            assert_eq!(used, FRAME_LEN);
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let record = StoreRecord::Outcome { seq: 99, identity: 1234, ok: 10, failed: 3 };
        let frame = record.encode_frame();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bent = frame.clone();
                bent[byte] ^= 1 << bit;
                match decode_frame(&bent) {
                    Err(_) => {}
                    Ok((decoded, _)) => {
                        panic!("flip at {byte}.{bit} decoded as {decoded:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_truncated_or_bad() {
        let frame =
            StoreRecord::Ban { seq: 5, identity: 42, suspicion_permille: 900 }.encode_frame();
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut]), Err(FrameError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_kind_is_rejected_even_with_valid_crc() {
        let record = StoreRecord::Outcome { seq: 1, identity: 2, ok: 3, failed: 4 };
        let mut payload = record.encode_payload().to_vec();
        payload[8] = 9; // invalid kind
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(decode_frame(&frame), Err(FrameError::BadPayload));
    }
}
