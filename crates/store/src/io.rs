//! Storage backends and the deterministic fault-injecting shim.
//!
//! The store never touches `std::fs` directly — every byte flows through
//! the [`Dir`] trait, a tiny directory-of-files abstraction with exactly
//! the operations a write-ahead log needs: append, fsync, atomic
//! replace, read. Three implementations:
//!
//! * [`FsDir`] — the production backend over a real directory;
//! * [`MemDir`] — an in-memory directory with an explicit *durability
//!   line* per file (bytes before it survived an fsync; bytes after it
//!   live in the page cache and die in a crash), shared between handles
//!   so a test can "reboot" a store against the same media;
//! * [`FaultDir`] — a wrapper over either that injects deterministic
//!   faults from a [`FaultSpec`] (`WATCHMEN_STORE_FAULTS`): short
//!   writes, failed fsyncs, torn replaces, and scripted crash points.
//!
//! A crash point in a [`MemDir`] truncates every file's volatile tail to
//! a pseudo-random surviving prefix (optionally flipping a bit in it —
//! the classic torn-write + media-corruption model); in an [`FsDir`] it
//! aborts the process, which is what the kill-and-restart crash-loop
//! harness leans on for *real* mid-write crashes at scripted offsets.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use watchmen_crypto::rng::SplitMix64;

/// A directory of named, append-oriented files — the store's entire
/// view of stable storage.
pub trait Dir: Send {
    /// Reads a file's full contents, or `None` if it does not exist.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Appends bytes to a file (creating it), returning how many bytes
    /// were actually written — **may be short**, like `Write::write`;
    /// callers loop. Appended bytes are *not* durable until
    /// [`Dir::sync`] succeeds.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<usize>;

    /// Forces a file's appended bytes to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors; on error, none, some, or all of
    /// the unsynced bytes may have reached the media.
    fn sync(&mut self, name: &str) -> io::Result<()>;

    /// Atomically replaces a file's contents (write temp, sync, rename)
    /// so the file holds either the old or the new bytes, durably, on
    /// return. The fault shim can violate this — which is why the store
    /// verifies snapshots by read-back before trusting them.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Simulates (or performs) a crash at this instant: volatile bytes
    /// are lost, possibly leaving a torn, bit-flipped tail. [`MemDir`]
    /// mutates its shared state and returns; [`FsDir`] aborts the
    /// process.
    fn crash(&mut self, rng: &mut SplitMix64, flip_bits: bool);
}

// ---------------------------------------------------------------------
// FsDir
// ---------------------------------------------------------------------

/// The production backend: one real directory.
#[derive(Debug)]
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Opens (creating if needed) the directory at `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsDir { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Dir for FsDir {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<usize> {
        use std::io::Write as _;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(self.path(name))?;
        file.write_all(bytes)?;
        Ok(bytes.len())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        std::fs::OpenOptions::new().read(true).open(self.path(name))?.sync_all()
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        // Make the rename itself durable (best effort: not every
        // platform lets a directory be fsynced through std).
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    fn crash(&mut self, _rng: &mut SplitMix64, _flip_bits: bool) {
        // A real crash: the kernel keeps whatever it already has. The
        // crash-loop harness restarts the process and recovers.
        std::process::abort();
    }
}

// ---------------------------------------------------------------------
// MemDir
// ---------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Full contents, including bytes not yet fsynced.
    data: Vec<u8>,
    /// Bytes `..durable` survived the last successful sync.
    durable: usize,
}

#[derive(Debug, Default)]
struct MemDirInner {
    files: BTreeMap<String, MemFile>,
}

/// An in-memory directory with crash semantics. Handles are cheap
/// clones sharing the same media, so a test can hand one handle to a
/// store, crash it, and reopen a fresh store over the surviving bytes.
#[derive(Debug, Clone, Default)]
pub struct MemDir {
    inner: Arc<Mutex<MemDirInner>>,
}

impl MemDir {
    /// A fresh, empty in-memory directory.
    #[must_use]
    pub fn new() -> Self {
        MemDir::default()
    }

    /// Total bytes currently held (durable or not) in `name`.
    #[must_use]
    pub fn len(&self, name: &str) -> usize {
        self.inner.lock().expect("memdir lock").files.get(name).map_or(0, |f| f.data.len())
    }

    /// Whether the directory holds no files.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("memdir lock").files.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemDirInner> {
        self.inner.lock().expect("memdir lock")
    }
}

impl Dir for MemDir {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.lock().files.get(name).map(|f| f.data.clone()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<usize> {
        let mut inner = self.lock();
        let file = inner.files.entry(name.to_owned()).or_default();
        file.data.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        let mut inner = self.lock();
        if let Some(file) = inner.files.get_mut(name) {
            file.durable = file.data.len();
        }
        Ok(())
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        inner.files.insert(name.to_owned(), MemFile { data: bytes.to_vec(), durable: bytes.len() });
        Ok(())
    }

    fn crash(&mut self, rng: &mut SplitMix64, flip_bits: bool) {
        let mut inner = self.lock();
        for file in inner.files.values_mut() {
            let volatile = file.data.len() - file.durable;
            if volatile == 0 {
                continue;
            }
            // A pseudo-random prefix of the unsynced tail survives the
            // crash (the kernel flushed some pages, not others)…
            let survives = (rng.next_u64() % (volatile as u64 + 1)) as usize;
            file.data.truncate(file.durable + survives);
            // …and the surviving torn region may come back corrupted.
            if flip_bits && survives > 0 && rng.next_u64().is_multiple_of(2) {
                let at = file.durable + (rng.next_u64() % survives as u64) as usize;
                file.data[at] ^= 1 << (rng.next_u64() % 8);
            }
        }
    }
}

// ---------------------------------------------------------------------
// FaultSpec + FaultDir
// ---------------------------------------------------------------------

/// Deterministic fault plan for a [`FaultDir`], parsed from the
/// `WATCHMEN_STORE_FAULTS` spec (mirroring the simnet's
/// `WATCHMEN_FAULTS` style): comma-separated `key=value` entries.
///
/// * `seed=<u64>` — RNG stream for every probabilistic draw;
/// * `short=<permille>` — probability an append writes only a random
///   prefix of the buffer (the caller sees the short count and loops);
/// * `fsync_fail=<permille>` — probability a sync returns an error
///   without making anything durable;
/// * `torn_replace=<permille>` — probability an atomic replace writes
///   only a durable *prefix* of the new contents (a broken rename);
/// * `crash_at=<n>` — crash on the `n`-th I/O operation (1-based,
///   counting appends, syncs and replaces);
/// * `flip=0|1` — whether a crash may flip one bit in the torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// RNG seed for every probabilistic draw.
    pub seed: u64,
    /// Short-write probability, in permille.
    pub short_permille: u32,
    /// Failed-fsync probability, in permille.
    pub fsync_fail_permille: u32,
    /// Torn-replace probability, in permille.
    pub torn_replace_permille: u32,
    /// Crash on this I/O operation (0 = never).
    pub crash_at_op: u64,
    /// Whether crashes may flip a bit in the surviving torn tail.
    pub flip_bits: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            short_permille: 0,
            fsync_fail_permille: 0,
            torn_replace_permille: 0,
            crash_at_op: 0,
            flip_bits: false,
        }
    }
}

impl FaultSpec {
    /// Parses a comma-separated spec (see the type docs for keys).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown entry.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut out = FaultSpec::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let parse =
                |v: &str| v.parse::<u64>().map_err(|_| format!("bad number {v:?} for {key}"));
            match key {
                "seed" => out.seed = parse(value)?,
                "short" => out.short_permille = parse(value)? as u32,
                "fsync_fail" => out.fsync_fail_permille = parse(value)? as u32,
                "torn_replace" => out.torn_replace_permille = parse(value)? as u32,
                "crash_at" => out.crash_at_op = parse(value)?,
                "flip" => out.flip_bits = parse(value)? != 0,
                other => return Err(format!("unknown store fault knob {other:?}")),
            }
        }
        for (name, p) in [
            ("short", out.short_permille),
            ("fsync_fail", out.fsync_fail_permille),
            ("torn_replace", out.torn_replace_permille),
        ] {
            if p > 1000 {
                return Err(format!("{name} permille {p} exceeds 1000"));
            }
        }
        Ok(out)
    }

    /// Reads `WATCHMEN_STORE_FAULTS`; `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set but malformed — a misspelled fault
    /// plan must fail loudly, not silently run an un-faulted store.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("WATCHMEN_STORE_FAULTS").ok()?;
        let spec = spec.trim();
        if spec.is_empty() {
            return None;
        }
        match Self::from_spec(spec) {
            Ok(plan) => Some(plan),
            Err(e) => panic!("WATCHMEN_STORE_FAULTS: {e}"),
        }
    }
}

/// Counters of faults a [`FaultDir`] actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends cut short.
    pub short_writes: u64,
    /// Syncs that returned an error.
    pub failed_syncs: u64,
    /// Replaces that left a torn prefix.
    pub torn_replaces: u64,
    /// Whether the scripted crash point fired.
    pub crashed: bool,
}

/// Wraps any [`Dir`] and injects the faults a [`FaultSpec`] scripts.
/// All draws come from one seeded [`SplitMix64`], so a given spec
/// produces the identical fault sequence every run.
#[derive(Debug)]
pub struct FaultDir<D: Dir> {
    inner: D,
    spec: FaultSpec,
    rng: SplitMix64,
    ops: u64,
    stats: FaultStats,
}

impl<D: Dir> FaultDir<D> {
    /// Wraps `inner` under `spec`.
    #[must_use]
    pub fn new(inner: D, spec: FaultSpec) -> Self {
        FaultDir {
            inner,
            spec,
            rng: SplitMix64::new(spec.seed),
            ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// What the shim injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The wrapped backend.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    fn roll(&mut self, permille: u32) -> bool {
        permille > 0 && self.rng.next_u64() % 1000 < u64::from(permille)
    }

    /// Counts one I/O op; fires the scripted crash when its turn comes.
    /// Returns `true` if the crash fired (in-memory backends survive the
    /// call; the caller sees every later op fail).
    fn tick_op(&mut self) -> bool {
        self.ops += 1;
        if self.spec.crash_at_op != 0 && self.ops == self.spec.crash_at_op {
            self.stats.crashed = true;
            let flip = self.spec.flip_bits;
            self.inner.crash(&mut self.rng, flip);
            return true;
        }
        self.stats.crashed
    }

    fn crashed_err() -> io::Error {
        io::Error::other("store media crashed (scripted fault)")
    }
}

impl<D: Dir> Dir for FaultDir<D> {
    fn read(&mut self, name: &str) -> io::Result<Option<Vec<u8>>> {
        if self.stats.crashed {
            return Err(Self::crashed_err());
        }
        self.inner.read(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<usize> {
        if self.tick_op() {
            return Err(Self::crashed_err());
        }
        if !bytes.is_empty() && self.roll(self.spec.short_permille) {
            let keep = 1 + (self.rng.next_u64() % bytes.len() as u64) as usize;
            if keep < bytes.len() {
                self.stats.short_writes += 1;
                return self.inner.append(name, &bytes[..keep]);
            }
        }
        self.inner.append(name, bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        if self.tick_op() {
            return Err(Self::crashed_err());
        }
        if self.roll(self.spec.fsync_fail_permille) {
            self.stats.failed_syncs += 1;
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync(name)
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if self.tick_op() {
            return Err(Self::crashed_err());
        }
        if !bytes.is_empty() && self.roll(self.spec.torn_replace_permille) {
            let keep = (self.rng.next_u64() % bytes.len() as u64) as usize;
            self.stats.torn_replaces += 1;
            return self.inner.replace(name, &bytes[..keep]);
        }
        self.inner.replace(name, bytes)
    }

    fn crash(&mut self, rng: &mut SplitMix64, flip_bits: bool) {
        self.stats.crashed = true;
        self.inner.crash(rng, flip_bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdir_append_sync_read_round_trip() {
        let mut dir = MemDir::new();
        assert_eq!(dir.read("wal").expect("read"), None);
        assert_eq!(dir.append("wal", b"abc").expect("append"), 3);
        dir.sync("wal").expect("sync");
        assert_eq!(dir.append("wal", b"def").expect("append"), 3);
        assert_eq!(dir.read("wal").expect("read").expect("exists"), b"abcdef");
        assert_eq!(dir.len("wal"), 6);
    }

    #[test]
    fn memdir_crash_keeps_durable_prefix_only_plus_torn_tail() {
        for seed in 0..64 {
            let mut dir = MemDir::new();
            dir.append("wal", b"durable!").expect("append");
            dir.sync("wal").expect("sync");
            dir.append("wal", b"volatile-tail").expect("append");
            let mut rng = SplitMix64::new(seed);
            dir.crash(&mut rng, false);
            let data = dir.read("wal").expect("read").expect("exists");
            assert!(data.len() >= 8, "durable bytes lost at seed {seed}");
            assert_eq!(&data[..8], b"durable!");
            assert!(data.len() <= 8 + 13);
        }
    }

    #[test]
    fn memdir_handles_share_media() {
        let dir = MemDir::new();
        let mut a = dir.clone();
        let mut b = dir.clone();
        a.append("wal", b"xy").expect("append");
        assert_eq!(b.read("wal").expect("read").expect("exists"), b"xy");
    }

    #[test]
    fn fault_spec_parses_and_rejects_junk() {
        let spec = FaultSpec::from_spec("seed=9,short=50,fsync_fail=10,crash_at=7,flip=1")
            .expect("valid spec");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.short_permille, 50);
        assert_eq!(spec.fsync_fail_permille, 10);
        assert_eq!(spec.crash_at_op, 7);
        assert!(spec.flip_bits);
        assert!(FaultSpec::from_spec("short").is_err(), "missing value");
        assert!(FaultSpec::from_spec("bogus=1").is_err(), "unknown knob");
        assert!(FaultSpec::from_spec("short=abc").is_err(), "bad number");
        assert!(FaultSpec::from_spec("short=1001").is_err(), "permille out of range");
        assert_eq!(FaultSpec::from_spec("").expect("empty is defaults"), FaultSpec::default());
    }

    #[test]
    fn fault_dir_injects_deterministically() {
        let run = |spec: FaultSpec| {
            let mut dir = FaultDir::new(MemDir::new(), spec);
            let mut written = Vec::new();
            for i in 0..200u32 {
                let n = dir.append("wal", &i.to_le_bytes()).expect("append");
                written.push(n);
                let _ = dir.sync("wal");
            }
            (written, dir.stats())
        };
        let spec = FaultSpec {
            seed: 42,
            short_permille: 200,
            fsync_fail_permille: 100,
            ..FaultSpec::default()
        };
        let (a, sa) = run(spec);
        let (b, sb) = run(spec);
        assert_eq!(a, b, "fault sequence must be deterministic");
        assert_eq!(sa, sb);
        assert!(sa.short_writes > 0, "short writes never fired: {sa:?}");
        assert!(sa.failed_syncs > 0, "fsync failures never fired: {sa:?}");
    }

    #[test]
    fn fault_dir_scripted_crash_kills_the_media() {
        let media = MemDir::new();
        let spec = FaultSpec { crash_at_op: 3, ..FaultSpec::default() };
        let mut dir = FaultDir::new(media.clone(), spec);
        dir.append("wal", b"one").expect("op 1");
        dir.sync("wal").expect("op 2");
        assert!(dir.append("wal", b"two").is_err(), "op 3 crashes");
        assert!(dir.stats().crashed);
        assert!(dir.append("wal", b"three").is_err(), "dead media stays dead");
        // The durable prefix survived on the shared media.
        let mut after = media;
        let data = after.read("wal").expect("read").expect("exists");
        assert!(data.starts_with(b"one"));
    }

    #[test]
    fn torn_replace_leaves_a_prefix() {
        let spec = FaultSpec { seed: 5, torn_replace_permille: 1000, ..FaultSpec::default() };
        let mut dir = FaultDir::new(MemDir::new(), spec);
        dir.replace("snap", b"full snapshot contents").expect("replace");
        assert_eq!(dir.stats().torn_replaces, 1);
        let got = dir.read("snap").expect("read").expect("exists");
        assert!(got.len() < b"full snapshot contents".len(), "replace should tear");
        assert!(b"full snapshot contents".starts_with(&got[..]));
    }

    #[test]
    fn fsdir_round_trips_and_replaces_atomically() {
        let root = std::env::temp_dir().join(format!("watchmen_store_io_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut dir = FsDir::open(&root).expect("open");
        assert_eq!(dir.read("wal").expect("read"), None);
        dir.append("wal", b"abc").expect("append");
        dir.sync("wal").expect("sync");
        dir.append("wal", b"def").expect("append");
        assert_eq!(dir.read("wal").expect("read").expect("exists"), b"abcdef");
        dir.replace("snap", b"v1").expect("replace");
        dir.replace("snap", b"v2-longer").expect("replace");
        assert_eq!(dir.read("snap").expect("read").expect("exists"), b"v2-longer");
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}
