//! Snapshot encoding: one self-validating image of the folded state.
//!
//! Compaction writes the whole [`RepState`] as a single checksummed
//! blob so recovery can skip replaying the log's prefix. The format is
//! belt-and-braces: a magic, a version, explicit entry count, and a
//! trailing CRC-32 over everything before it — a truncated or
//! bit-flipped snapshot fails closed (recovery falls back to the other
//! snapshot slot, or to full-log replay) instead of loading garbage.
//!
//! ```text
//! ┌───────┬─────────┬─────────────┬───────┬───────────────┬───────┐
//! │ magic │ version │ applied_seq │ count │ count entries │ crc32 │
//! │  u32  │   u32   │     u64     │  u64  │   29 B each   │  u32  │
//! └───────┴─────────┴─────────────┴───────┴───────────────┴───────┘
//! ```

use std::collections::BTreeMap;

use crate::record::crc32;
use crate::state::{IdentityEntry, RepState};

/// Snapshot magic: `WSNP` little-endian.
pub const SNAP_MAGIC: u32 = 0x504E_5357;

/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8 + 8;
const ENTRY_LEN: usize = 8 + 8 + 8 + 1 + 4;

/// Why a snapshot image was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than a header + CRC, or shorter than its entry count
    /// implies — a truncated write.
    Truncated,
    /// Bad magic or unsupported version.
    BadHeader,
    /// The trailing CRC does not match the image.
    BadCrc,
}

/// Serialises the state as a snapshot image.
#[must_use]
pub fn encode_snapshot(state: &RepState) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + state.len() * ENTRY_LEN + 4);
    out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&state.applied_seq().to_le_bytes());
    out.extend_from_slice(&(state.len() as u64).to_le_bytes());
    for (id, e) in state.iter() {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&e.ok.to_le_bytes());
        out.extend_from_slice(&e.failed.to_le_bytes());
        out.push(u8::from(e.banned));
        out.extend_from_slice(&e.ban_suspicion_permille.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses and validates a snapshot image.
///
/// # Errors
///
/// A [`SnapshotError`] naming the first violated invariant; the caller
/// treats any error as "this slot is unusable" and falls back.
pub fn decode_snapshot(bytes: &[u8]) -> Result<RepState, SnapshotError> {
    if bytes.len() < HEADER_LEN + 4 {
        return Err(SnapshotError::Truncated);
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(SnapshotError::BadCrc);
    }
    let magic = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    if magic != SNAP_MAGIC || version != SNAP_VERSION {
        return Err(SnapshotError::BadHeader);
    }
    let applied_seq = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let count = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
    if body.len() != HEADER_LEN + count * ENTRY_LEN {
        return Err(SnapshotError::Truncated);
    }
    let mut entries = BTreeMap::new();
    for i in 0..count {
        let at = HEADER_LEN + i * ENTRY_LEN;
        let e = &body[at..at + ENTRY_LEN];
        let identity = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
        entries.insert(
            identity,
            IdentityEntry {
                ok: u64::from_le_bytes(e[8..16].try_into().expect("8 bytes")),
                failed: u64::from_le_bytes(e[16..24].try_into().expect("8 bytes")),
                banned: e[24] != 0,
                ban_suspicion_permille: u32::from_le_bytes(e[25..29].try_into().expect("4 bytes")),
            },
        );
    }
    Ok(RepState::from_parts(entries, applied_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StoreRecord;

    fn sample_state() -> RepState {
        let mut state = RepState::new();
        state.apply(&StoreRecord::Outcome { seq: 1, identity: 42, ok: 100, failed: 3 });
        state.apply(&StoreRecord::Outcome { seq: 2, identity: 7, ok: 10, failed: 40 });
        state.apply(&StoreRecord::Ban { seq: 3, identity: 7, suspicion_permille: 800 });
        state
    }

    #[test]
    fn snapshot_round_trips() {
        let state = sample_state();
        let bytes = encode_snapshot(&state);
        let back = decode_snapshot(&bytes).expect("round trip");
        assert_eq!(back, state);
        assert_eq!(back.digest(), state.digest());
    }

    #[test]
    fn empty_state_round_trips() {
        let state = RepState::new();
        let back = decode_snapshot(&encode_snapshot(&state)).expect("round trip");
        assert_eq!(back, state);
    }

    #[test]
    fn truncation_at_every_length_fails_closed() {
        let bytes = encode_snapshot(&sample_state());
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut} must be rejected");
        }
    }

    #[test]
    fn every_single_bit_flip_fails_closed() {
        let bytes = encode_snapshot(&sample_state());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bent = bytes.clone();
                bent[byte] ^= 1 << bit;
                assert!(decode_snapshot(&bent).is_err(), "flip at {byte}.{bit} must be rejected");
            }
        }
    }
}
