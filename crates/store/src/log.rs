//! Write-ahead-log scanning: the recovery path's core.
//!
//! [`scan_log`] walks a byte image of the WAL and extracts every
//! decodable record, tolerating the three corruption shapes a crashed
//! writer leaves behind:
//!
//! * **torn tail** — the final record was mid-write; decoding hits a
//!   truncated frame and the scan stops, counting the dangling bytes;
//! * **bit flips** — a record's CRC (or magic/length) fails mid-log;
//!   the scan *resyncs* by searching forward for the next frame magic
//!   and continues, counting the corrupt episode and skipped bytes;
//! * **duplicated batches** — a commit retried after a failed fsync
//!   appends the same records twice; the scan surfaces both copies and
//!   the seq-guarded fold in [`crate::state::RepState`] drops the
//!   replays.
//!
//! Scanning never panics and never errors: the worst input yields zero
//! records and a full accounting in the [`LogScanReport`].

use crate::record::{decode_frame, FrameError, StoreRecord, FRAME_MAGIC};

/// What a log scan found, beyond the records themselves.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LogScanReport {
    /// Records decoded successfully.
    pub records: u64,
    /// Corruption episodes mid-log (bad CRC/magic/length/payload
    /// followed by a successful resync or end of log).
    pub corrupt_episodes: u64,
    /// Bytes skipped while resyncing past corruption.
    pub skipped_bytes: u64,
    /// Dangling bytes at the tail that never formed a full frame.
    pub torn_tail_bytes: u64,
}

/// Scans a WAL image, returning every decodable record in file order
/// plus the corruption accounting.
#[must_use]
pub fn scan_log(bytes: &[u8]) -> (Vec<StoreRecord>, LogScanReport) {
    let magic = FRAME_MAGIC.to_le_bytes();
    let mut records = Vec::new();
    let mut report = LogScanReport::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match decode_frame(&bytes[offset..]) {
            Ok((record, used)) => {
                records.push(record);
                report.records += 1;
                offset += used;
            }
            Err(FrameError::Truncated) => {
                // Not enough bytes left for a frame: the torn tail.
                report.torn_tail_bytes += (bytes.len() - offset) as u64;
                break;
            }
            Err(_) => {
                // Corruption at this offset: scan forward for the next
                // plausible frame start.
                report.corrupt_episodes += 1;
                let resume = find_magic(&bytes[offset + 1..], &magic)
                    .map_or(bytes.len(), |at| offset + 1 + at);
                report.skipped_bytes += (resume - offset) as u64;
                offset = resume;
            }
        }
    }
    (records, report)
}

/// First offset of `magic` in `haystack`, if any.
fn find_magic(haystack: &[u8], magic: &[u8; 4]) -> Option<usize> {
    haystack.windows(4).position(|w| w == magic)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(seq: u64, identity: u64, ok: u32, failed: u32) -> StoreRecord {
        StoreRecord::Outcome { seq, identity, ok, failed }
    }

    fn log_of(records: &[StoreRecord]) -> Vec<u8> {
        records.iter().flat_map(StoreRecord::encode_frame).collect()
    }

    #[test]
    fn clean_log_scans_fully() {
        let records = vec![outcome(1, 10, 9, 1), outcome(2, 11, 8, 2), outcome(3, 10, 7, 3)];
        let (got, report) = scan_log(&log_of(&records));
        assert_eq!(got, records);
        assert_eq!(report, LogScanReport { records: 3, ..LogScanReport::default() });
    }

    #[test]
    fn empty_log_is_fine() {
        let (got, report) = scan_log(&[]);
        assert!(got.is_empty());
        assert_eq!(report, LogScanReport::default());
    }

    #[test]
    fn torn_tail_is_cut_and_counted_at_every_length() {
        let records = vec![outcome(1, 1, 5, 5), outcome(2, 2, 6, 4)];
        let full = log_of(&records);
        let tail = outcome(3, 3, 7, 3).encode_frame();
        for cut in 1..tail.len() {
            let mut torn = full.clone();
            torn.extend_from_slice(&tail[..cut]);
            let (got, report) = scan_log(&torn);
            assert_eq!(got, records, "cut {cut}");
            assert_eq!(report.records, 2);
            assert_eq!(report.torn_tail_bytes, cut as u64, "cut {cut}");
            assert_eq!(report.corrupt_episodes, 0, "a torn tail is not corruption");
        }
    }

    #[test]
    fn bit_flip_mid_log_resyncs_to_later_records() {
        let records = vec![outcome(1, 1, 5, 5), outcome(2, 2, 6, 4), outcome(3, 3, 7, 3)];
        let mut bytes = log_of(&records);
        // Flip one payload bit of the middle record.
        let mid = records[0].encode_frame().len() + 20;
        bytes[mid] ^= 0x10;
        let (got, report) = scan_log(&bytes);
        assert_eq!(got, vec![records[0], records[2]], "scan must reach the last valid record");
        assert_eq!(report.corrupt_episodes, 1);
        assert!(report.skipped_bytes > 0);
    }

    #[test]
    fn garbage_between_records_is_skipped() {
        let a = outcome(1, 1, 1, 1);
        let b = outcome(2, 2, 2, 2);
        let mut bytes = a.encode_frame();
        bytes.extend_from_slice(b"not a frame at all");
        bytes.extend_from_slice(&b.encode_frame());
        let (got, report) = scan_log(&bytes);
        assert_eq!(got, vec![a, b]);
        assert_eq!(report.corrupt_episodes, 1);
        assert_eq!(report.skipped_bytes, 18);
    }

    #[test]
    fn pure_garbage_never_panics() {
        let mut junk = Vec::new();
        let mut x: u64 = 0x1234_5678;
        for _ in 0..4096 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            junk.push((x >> 32) as u8);
        }
        let (got, report) = scan_log(&junk);
        assert!(got.is_empty() || report.corrupt_episodes > 0);
    }
}
