//! Crash-safe durable reputation store for cross-match bans.
//!
//! The Watchmen paper's reputation system ranks players by how often
//! their interactions are tagged suspicious — but a reputation that
//! evaporates when the match ends (or the process dies) cannot back a
//! *ban*. This crate persists the per-identity interaction totals and
//! explicit ban decisions across matches and across crashes:
//!
//! * [`record`] — checksummed, length-prefixed WAL frames ([`StoreRecord`]);
//! * [`log`] — the scan-to-last-valid recovery scanner ([`scan_log`])
//!   tolerating torn tails, bit flips, and duplicated batches;
//! * [`snapshot`] — whole-state images with a trailing CRC, written to
//!   two alternating slots so a torn compaction never loses the good copy;
//! * [`state`] — the pure, seq-idempotent fold ([`RepState`]) and the
//!   cross-match ban policy ([`StorePolicy`]);
//! * [`io`] — the [`Dir`] storage abstraction: a real directory
//!   ([`FsDir`]), an in-memory crash-simulating one ([`MemDir`]), and a
//!   deterministic fault-injection shim ([`FaultDir`]) driven by
//!   `WATCHMEN_STORE_FAULTS`;
//! * [`store`] — the [`ReputationStore`] facade: stage, commit
//!   (append + fsync, *then* ack), compact, recover.
//!
//! The durability contract in one line: **a commit receipt means the
//! batch survives any crash; absence of a receipt means the batch may
//! be lost but never corrupts what was already acked.** Bans are
//! explicit records, never re-derived from counts at recovery, so a
//! crash can delay a ban (recovery re-stages it) but cannot invent one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod log;
pub mod record;
pub mod snapshot;
pub mod state;
pub mod store;

pub use crate::io::{Dir, FaultDir, FaultSpec, FaultStats, FsDir, MemDir};
pub use crate::log::{scan_log, LogScanReport};
pub use crate::record::{crc32, decode_frame, FrameError, StoreRecord, FRAME_LEN, FRAME_MAGIC};
pub use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotError};
pub use crate::state::{IdentityEntry, RepState, StorePolicy};
pub use crate::store::{
    CommitReceipt, RecoveryReport, ReputationStore, StoreStats, SNAP_SLOTS, WAL_FILE,
};
