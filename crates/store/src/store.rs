//! The store facade: staging, durable commits, recovery, compaction.
//!
//! [`ReputationStore`] ties the pieces together around one hard
//! contract: **an acknowledgement means durability**. `note_outcome`
//! and the bans it derives are only *staged*; [`ReputationStore::commit`]
//! appends the staged frames to the WAL, fsyncs, and only then folds
//! them into the visible state and returns a receipt. A crash before
//! the receipt may lose the batch (the caller never saw an ack); a
//! crash after cannot, because recovery replays the WAL.
//!
//! Failure handling is retry-shaped: a failed append or fsync keeps the
//! staged batch (with its already-assigned sequence numbers) so the
//! next commit re-appends it. That can duplicate frames in the file —
//! harmless, because replay is seq-idempotent (see
//! [`crate::state::RepState::apply`]).
//!
//! Compaction writes the folded state into one of two alternating
//! snapshot slots, **reads it back and verifies it decodes to the same
//! state**, and only then truncates the WAL. A torn snapshot therefore
//! never costs data: the WAL still holds everything, and recovery falls
//! back to the other slot or to full replay.

use std::io;

use crate::io::Dir;
use crate::log::scan_log;
use crate::record::{StoreRecord, FRAME_LEN};
use crate::snapshot::{decode_snapshot, encode_snapshot};
use crate::state::{IdentityEntry, RepState, StorePolicy};
use watchmen_telemetry::Registry;

/// WAL file name inside the store directory.
pub const WAL_FILE: &str = "wal.bin";

/// The two alternating snapshot slots.
pub const SNAP_SLOTS: [&str; 2] = ["snap.a", "snap.b"];

/// What recovery found while opening a store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid snapshot was loaded (vs. starting from empty).
    pub snapshot_loaded: bool,
    /// Snapshot slots that existed but failed validation.
    pub snapshot_slots_invalid: u64,
    /// WAL records decoded.
    pub wal_records: u64,
    /// WAL records dropped by the seq-idempotence guard (duplicated
    /// batches, or records the snapshot already covers).
    pub stale_replays: u64,
    /// Corruption episodes resynced past mid-log.
    pub corrupt_episodes: u64,
    /// Bytes skipped while resyncing.
    pub skipped_bytes: u64,
    /// Dangling torn-tail bytes at the end of the WAL.
    pub torn_tail_bytes: u64,
    /// Bans re-staged at open because recovered counts satisfied the
    /// policy but the durable ban record was lost in a torn tail.
    pub restaged_bans: u64,
}

/// The receipt a successful commit returns: everything at or below
/// `acked_seq` is durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Highest durable sequence number.
    pub acked_seq: u64,
    /// Records made durable by this commit.
    pub records: u64,
    /// Identities whose ban became durable in this commit, with the
    /// triggering suspicion in permille.
    pub new_bans: Vec<(u64, u32)>,
}

/// Cumulative operational counters, exported to telemetry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful commits.
    pub commits: u64,
    /// Records made durable.
    pub records_committed: u64,
    /// Commit attempts that failed (append or fsync error) and left the
    /// batch staged for retry.
    pub commit_failures: u64,
    /// Extra append calls needed because of short writes.
    pub short_write_retries: u64,
    /// Successful compactions (snapshot verified, WAL truncated).
    pub compactions: u64,
    /// Compaction attempts abandoned because the written snapshot
    /// failed read-back verification (WAL left untouched).
    pub snapshot_verify_failures: u64,
    /// Corruption episodes seen at recovery.
    pub corrupt_episodes: u64,
    /// Bytes skipped at recovery (resync + torn tail).
    pub lost_bytes: u64,
}

/// A durable, crash-safe reputation store over an abstract [`Dir`].
pub struct ReputationStore {
    dir: Box<dyn Dir>,
    policy: StorePolicy,
    state: RepState,
    staged: Vec<StoreRecord>,
    next_seq: u64,
    next_snap_slot: usize,
    wal_bytes: u64,
    stats: StoreStats,
}

impl ReputationStore {
    /// Opens a store, running recovery: load the freshest valid
    /// snapshot slot (if any), replay the WAL over it with the
    /// seq-idempotence guard, and re-stage any ban the recovered counts
    /// justify but whose durable record was lost.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors from reading the directory.
    /// Corruption is never an error — it is tolerated and counted.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is invalid (see [`StorePolicy::validate`]).
    pub fn open(mut dir: Box<dyn Dir>, policy: StorePolicy) -> io::Result<(Self, RecoveryReport)> {
        policy.validate();
        let mut report = RecoveryReport::default();

        // Pick the freshest snapshot slot that validates.
        let mut state = RepState::new();
        let mut loaded_slot = None;
        for (slot, name) in SNAP_SLOTS.iter().enumerate() {
            let Some(bytes) = dir.read(name)? else { continue };
            match decode_snapshot(&bytes) {
                Ok(snap) if loaded_slot.is_none() || snap.applied_seq() > state.applied_seq() => {
                    state = snap;
                    loaded_slot = Some(slot);
                }
                Ok(_) => {}
                Err(_) => report.snapshot_slots_invalid += 1,
            }
        }
        report.snapshot_loaded = loaded_slot.is_some();

        // Replay the WAL over the snapshot.
        let wal = dir.read(WAL_FILE)?.unwrap_or_default();
        let wal_bytes = wal.len() as u64;
        let (records, scan) = scan_log(&wal);
        for record in &records {
            if state.apply(record) {
                report.wal_records += 1;
            } else {
                report.stale_replays += 1;
            }
        }
        report.corrupt_episodes = scan.corrupt_episodes;
        report.skipped_bytes = scan.skipped_bytes;
        report.torn_tail_bytes = scan.torn_tail_bytes;

        let next_seq = state.applied_seq() + 1;
        // Write the next snapshot into the slot we did NOT load from,
        // so a torn compaction can't destroy the good copy.
        let next_snap_slot = loaded_slot.map_or(0, |s| 1 - s);
        let mut store = ReputationStore {
            dir,
            policy,
            state,
            staged: Vec::new(),
            next_seq,
            next_snap_slot,
            wal_bytes,
            stats: StoreStats {
                corrupt_episodes: scan.corrupt_episodes,
                lost_bytes: scan.skipped_bytes + scan.torn_tail_bytes,
                ..StoreStats::default()
            },
        };

        // Counts may satisfy the ban policy while the Ban record itself
        // was lost in a torn tail (it was never acked, so no contract is
        // violated — but convergence demands the decision be re-made).
        let overdue: Vec<(u64, u32)> = store
            .state
            .iter()
            .filter(|(_, e)| !e.banned && policy.should_ban(e.ok, e.failed))
            .map(|(&id, e)| (id, suspicion_permille(e)))
            .collect();
        for (identity, permille) in overdue {
            store.stage(StoreRecord::Ban { seq: 0, identity, suspicion_permille: permille });
            report.restaged_bans += 1;
        }
        Ok((store, report))
    }

    /// The configured ban policy.
    #[must_use]
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// The durable (committed) state. Staged records are not visible.
    #[must_use]
    pub fn state(&self) -> &RepState {
        &self.state
    }

    /// Whether a *durable* ban exists for `identity`.
    #[must_use]
    pub fn is_banned(&self, identity: u64) -> bool {
        self.state.is_banned(identity)
    }

    /// Every durably banned identity, ascending.
    #[must_use]
    pub fn banned_identities(&self) -> Vec<u64> {
        self.state.banned_identities()
    }

    /// Records staged but not yet committed.
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Approximate WAL size in bytes (exact when no faults tore writes).
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Operational counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Stages one match's aggregated outcome for `identity` and, if the
    /// prospective cross-match counts now satisfy the ban policy (and
    /// no ban exists or is staged), stages the ban decision too.
    ///
    /// Nothing is durable until [`ReputationStore::commit`] succeeds.
    pub fn note_outcome(&mut self, identity: u64, ok: u32, failed: u32) {
        self.stage(StoreRecord::Outcome { seq: 0, identity, ok, failed });
        let mut entry = self.state.entry(identity).copied().unwrap_or_default();
        for r in &self.staged {
            match *r {
                StoreRecord::Outcome { identity: id, ok, failed, .. } if id == identity => {
                    entry.ok += u64::from(ok);
                    entry.failed += u64::from(failed);
                }
                StoreRecord::Ban { identity: id, .. } if id == identity => entry.banned = true,
                _ => {}
            }
        }
        if !entry.banned && self.policy.should_ban(entry.ok, entry.failed) {
            let permille = suspicion_permille(&entry);
            self.stage(StoreRecord::Ban { seq: 0, identity, suspicion_permille: permille });
        }
    }

    fn stage(&mut self, record: StoreRecord) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let stamped = match record {
            StoreRecord::Outcome { identity, ok, failed, .. } => {
                StoreRecord::Outcome { seq, identity, ok, failed }
            }
            StoreRecord::Ban { identity, suspicion_permille, .. } => {
                StoreRecord::Ban { seq, identity, suspicion_permille }
            }
        };
        self.staged.push(stamped);
    }

    /// Commits every staged record: append to the WAL, fsync, fold into
    /// the visible state, acknowledge.
    ///
    /// # Errors
    ///
    /// On append or fsync failure the batch stays staged (same seqs)
    /// and the error is returned; the caller retries by calling
    /// `commit` again. A retry may duplicate frames already partially
    /// written — replay's idempotence makes that harmless.
    pub fn commit(&mut self) -> io::Result<CommitReceipt> {
        if self.staged.is_empty() {
            return Ok(CommitReceipt {
                acked_seq: self.state.applied_seq(),
                records: 0,
                new_bans: Vec::new(),
            });
        }
        let frames: Vec<u8> = self.staged.iter().flat_map(StoreRecord::encode_frame).collect();
        let mut written = 0usize;
        let mut calls = 0u64;
        while written < frames.len() {
            match self.dir.append(WAL_FILE, &frames[written..]) {
                Ok(n) => {
                    written += n;
                    self.wal_bytes += n as u64;
                    calls += 1;
                }
                Err(e) => {
                    self.stats.commit_failures += 1;
                    self.stats.short_write_retries += calls.saturating_sub(1);
                    return Err(e);
                }
            }
        }
        self.stats.short_write_retries += calls.saturating_sub(1);
        if let Err(e) = self.dir.sync(WAL_FILE) {
            self.stats.commit_failures += 1;
            return Err(e);
        }

        // Durable: fold, collect bans, acknowledge.
        let mut new_bans = Vec::new();
        let records = self.staged.len() as u64;
        for record in self.staged.drain(..) {
            if let StoreRecord::Ban { identity, suspicion_permille, .. } = record {
                new_bans.push((identity, suspicion_permille));
            }
            self.state.apply(&record);
        }
        self.stats.commits += 1;
        self.stats.records_committed += records;
        Ok(CommitReceipt { acked_seq: self.state.applied_seq(), records, new_bans })
    }

    /// Compacts: snapshot the committed state into the alternate slot,
    /// read it back and verify it decodes to the identical state, then
    /// truncate the WAL. On verification failure the WAL is left
    /// untouched — no data is at risk, the attempt just didn't pay off.
    ///
    /// # Errors
    ///
    /// Backend I/O errors, or `InvalidData` when the written snapshot
    /// fails read-back verification.
    pub fn compact(&mut self) -> io::Result<()> {
        let image = encode_snapshot(&self.state);
        let slot = SNAP_SLOTS[self.next_snap_slot];
        self.dir.replace(slot, &image)?;
        let ok = match self.dir.read(slot)? {
            Some(back) => decode_snapshot(&back).is_ok_and(|s| s == self.state),
            None => false,
        };
        if !ok {
            self.stats.snapshot_verify_failures += 1;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot slot {slot} failed read-back verification"),
            ));
        }
        self.dir.replace(WAL_FILE, &[])?;
        self.wal_bytes = 0;
        self.next_snap_slot = 1 - self.next_snap_slot;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Commits, then compacts if the WAL has grown past `threshold`
    /// bytes. The convenience loop for long-running owners.
    ///
    /// # Errors
    ///
    /// Propagates commit errors; compaction errors are swallowed into
    /// stats (the WAL still holds everything, so nothing is lost).
    pub fn commit_and_maybe_compact(&mut self, threshold: u64) -> io::Result<CommitReceipt> {
        let receipt = self.commit()?;
        if self.wal_bytes >= threshold.max(FRAME_LEN as u64) {
            // Best-effort: a failed compaction costs nothing.
            let _ = self.compact();
        }
        Ok(receipt)
    }

    /// Publishes the store counters into a telemetry registry.
    pub fn publish_metrics(&self, registry: &Registry) {
        let s = &self.stats;
        let pairs: [(&str, u64); 8] = [
            ("store_commits_total", s.commits),
            ("store_records_committed_total", s.records_committed),
            ("store_commit_failures_total", s.commit_failures),
            ("store_short_write_retries_total", s.short_write_retries),
            ("store_compactions_total", s.compactions),
            ("store_snapshot_verify_failures_total", s.snapshot_verify_failures),
            ("store_corrupt_episodes_total", s.corrupt_episodes),
            ("store_lost_bytes_total", s.lost_bytes),
        ];
        for (name, value) in pairs {
            let counter = registry.counter(name);
            counter.reset();
            counter.add(value);
        }
    }
}

fn suspicion_permille(entry: &IdentityEntry) -> u32 {
    (entry.suspicion() * 1000.0).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultDir, FaultSpec, MemDir};

    fn mem_store() -> (MemDir, ReputationStore) {
        let dir = MemDir::new();
        let (store, report) =
            ReputationStore::open(Box::new(dir.clone()), StorePolicy::default()).expect("open");
        assert_eq!(report, RecoveryReport::default());
        (dir, store)
    }

    fn reopen(dir: &MemDir) -> (ReputationStore, RecoveryReport) {
        ReputationStore::open(Box::new(dir.clone()), StorePolicy::default()).expect("reopen")
    }

    #[test]
    fn outcomes_commit_and_recover() {
        let (dir, mut store) = mem_store();
        store.note_outcome(7, 28, 2);
        store.note_outcome(9, 30, 0);
        let receipt = store.commit().expect("commit");
        assert_eq!(receipt.records, 2);
        assert!(receipt.new_bans.is_empty());

        let (back, report) = reopen(&dir);
        assert_eq!(back.state(), store.state());
        assert_eq!(report.wal_records, 2);
        assert!(!report.snapshot_loaded);
    }

    #[test]
    fn ban_is_staged_when_policy_trips_and_survives_recovery() {
        let (dir, mut store) = mem_store();
        store.note_outcome(5, 10, 25); // 10/35 ≈ 29% ok — well under 85%
        let receipt = store.commit().expect("commit");
        assert_eq!(receipt.new_bans, vec![(5, 714)]);
        assert!(store.is_banned(5));

        let (back, _) = reopen(&dir);
        assert!(back.is_banned(5), "acked ban must survive recovery");
        assert_eq!(back.state().entry(5).expect("entry").ban_suspicion_permille, 714);
    }

    #[test]
    fn no_double_ban_across_commits() {
        let (_dir, mut store) = mem_store();
        store.note_outcome(5, 0, 40);
        assert_eq!(store.commit().expect("commit").new_bans.len(), 1);
        store.note_outcome(5, 0, 40);
        assert!(store.commit().expect("commit").new_bans.is_empty(), "already banned");
    }

    #[test]
    fn empty_commit_is_a_cheap_noop() {
        let (_dir, mut store) = mem_store();
        let receipt = store.commit().expect("commit");
        assert_eq!(receipt.records, 0);
        assert_eq!(store.stats().commits, 0);
    }

    #[test]
    fn compaction_truncates_wal_and_recovery_uses_snapshot() {
        let (dir, mut store) = mem_store();
        for i in 0..10 {
            store.note_outcome(i, 20, 1);
        }
        store.commit().expect("commit");
        assert!(store.wal_bytes() > 0);
        store.compact().expect("compact");
        assert_eq!(store.wal_bytes(), 0);
        assert_eq!(dir.len(WAL_FILE), 0);

        let (back, report) = reopen(&dir);
        assert!(report.snapshot_loaded);
        assert_eq!(report.wal_records, 0);
        assert_eq!(back.state(), store.state());
    }

    #[test]
    fn alternating_slots_fall_back_when_freshest_is_corrupt() {
        let (dir, mut store) = mem_store();
        store.note_outcome(1, 10, 0);
        store.commit().expect("commit");
        store.compact().expect("compact into slot a");
        store.note_outcome(2, 10, 0);
        store.commit().expect("commit");
        store.compact().expect("compact into slot b");
        // Both slots exist. Corrupt the freshest (slot b): recovery must
        // fall back to slot a — identity 2 lives only in the truncated
        // WAL now, so it is forgotten, but nothing panics and slot a's
        // contents survive intact.
        let fresh = dir.clone().read(SNAP_SLOTS[1]).expect("read").expect("exists");
        dir.clone().replace(SNAP_SLOTS[1], &fresh[..fresh.len() / 2]).expect("corrupt");
        let (back, report) = reopen(&dir);
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_slots_invalid, 1);
        assert!(back.state().entry(1).is_some(), "slot a state survives");
    }

    #[test]
    fn failed_fsync_keeps_batch_staged_and_retry_converges() {
        // Fail every fsync until the spec is swapped out.
        let spec = FaultSpec { fsync_fail_permille: 1000, ..FaultSpec::default() };
        let dir = MemDir::new();
        let faulty = FaultDir::new(dir.clone(), spec);
        let (mut store, _) =
            ReputationStore::open(Box::new(faulty), StorePolicy::default()).expect("open");
        store.note_outcome(3, 5, 5);
        assert!(store.commit().is_err(), "fsync always fails");
        assert_eq!(store.staged_len(), 1, "batch stays staged");
        assert!(store.commit().is_err());
        assert_eq!(store.stats().commit_failures, 2);

        // The file now holds duplicated frames; a clean reopen must fold
        // them exactly once.
        let (back, report) = reopen(&dir);
        assert_eq!(report.stale_replays, 1, "duplicate batch dropped by seq guard");
        let entry = back.state().entry(3).expect("entry");
        assert_eq!((entry.ok, entry.failed), (5, 5));
    }

    #[test]
    fn recovery_restages_ban_lost_in_torn_tail() {
        let (dir, mut store) = mem_store();
        store.note_outcome(4, 0, 40);
        store.commit().expect("commit");
        // Chop the Ban frame (the last one) off the WAL: an unacked-ban
        // crash shape. Counts survive, the ban record does not.
        let wal = dir.clone().read(WAL_FILE).expect("read").expect("exists");
        let torn = &wal[..wal.len() - FRAME_LEN];
        dir.clone().replace(WAL_FILE, torn).expect("truncate");

        let (mut back, report) = reopen(&dir);
        assert!(!back.is_banned(4), "lost ban is not yet durable");
        assert_eq!(report.restaged_bans, 1, "but the decision is re-staged");
        let receipt = back.commit().expect("commit");
        assert_eq!(receipt.new_bans.len(), 1);
        assert!(back.is_banned(4));
    }

    #[test]
    fn commit_and_maybe_compact_compacts_past_threshold() {
        let (dir, mut store) = mem_store();
        store.note_outcome(1, 9, 1);
        store.commit_and_maybe_compact(1).expect("commit");
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(dir.len(WAL_FILE), 0);
    }

    #[test]
    fn metrics_publish_counters() {
        let (_dir, mut store) = mem_store();
        store.note_outcome(1, 9, 1);
        store.commit().expect("commit");
        let registry = Registry::new();
        store.publish_metrics(&registry);
        assert_eq!(registry.counter("store_commits_total").get(), 1);
        assert_eq!(registry.counter("store_records_committed_total").get(), 1);
    }
}
