//! Property-based tests for the crypto crate.

use proptest::prelude::*;
use watchmen_crypto::field::{add_mod, inv_mod_prime, mul_mod, pow_mod, sub_mod};
use watchmen_crypto::rng::Xoshiro256;
use watchmen_crypto::schnorr::{Keypair, PublicKey, Signature, GROUP_ORDER};
use watchmen_crypto::{hmac_sha256, sha256};

const P: u64 = 1_000_000_007;

proptest! {
    #[test]
    fn field_add_sub_inverse(a in 0..P, b in 0..P) {
        prop_assert_eq!(sub_mod(add_mod(a, b, P), b, P), a);
        prop_assert_eq!(add_mod(sub_mod(a, b, P), b, P), a);
    }

    #[test]
    fn field_mul_commutes_and_distributes(a in 0..P, b in 0..P, c in 0..P) {
        prop_assert_eq!(mul_mod(a, b, P), mul_mod(b, a, P));
        let left = mul_mod(a, add_mod(b, c, P), P);
        let right = add_mod(mul_mod(a, b, P), mul_mod(a, c, P), P);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn field_pow_laws(a in 1..P, x in 0u64..1000, y in 0u64..1000) {
        let lhs = pow_mod(a, x + y, P);
        let rhs = mul_mod(pow_mod(a, x, P), pow_mod(a, y, P), P);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn field_inverse_multiplies_to_one(a in 1..P) {
        let inv = inv_mod_prime(a, P).unwrap();
        prop_assert_eq!(mul_mod(a, inv, P), 1);
    }

    #[test]
    fn sha256_deterministic_and_sensitive(data in prop::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            prop_assert_ne!(sha256(&data), sha256(&flipped));
        }
    }

    #[test]
    fn hmac_differs_by_key(
        key in prop::collection::vec(any::<u8>(), 1..100),
        msg in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut key2 = key.clone();
        key2[0] ^= 0xff;
        prop_assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key2, &msg));
    }

    #[test]
    fn schnorr_roundtrip(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        let keys = Keypair::generate(seed);
        let sig = keys.sign(&msg);
        prop_assert!(keys.public().verify(&msg, &sig));
    }

    #[test]
    fn schnorr_rejects_bit_flips(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 1..100), bit in 0usize..8) {
        let keys = Keypair::generate(seed);
        let sig = keys.sign(&msg);
        let mut tampered = msg.clone();
        tampered[0] ^= 1 << bit;
        prop_assert!(!keys.public().verify(&tampered, &sig));
    }

    #[test]
    fn schnorr_signature_encoding_roundtrip(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..50)) {
        let sig = Keypair::generate(seed).sign(&msg);
        prop_assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
    }

    #[test]
    fn schnorr_pubkey_encoding_roundtrip(seed in any::<u64>()) {
        let pk = Keypair::generate(seed).public();
        prop_assert_eq!(PublicKey::from_u64(pk.to_u64()), Some(pk));
    }

    #[test]
    fn rng_range_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_range(bound) < bound);
        }
    }

    #[test]
    fn rng_same_seed_same_stream(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Xoshiro256::seed_from(seed, stream);
        let mut b = Xoshiro256::seed_from(seed, stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn scalars_in_range(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..30)) {
        let sig = Keypair::generate(seed).sign(&msg);
        let bytes = sig.to_bytes();
        let e = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let s = u64::from_be_bytes(bytes[8..].try_into().unwrap());
        prop_assert!(e < GROUP_ORDER && s < GROUP_ORDER);
    }
}
