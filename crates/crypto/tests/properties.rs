//! Randomized property tests for the crypto crate, driven by its own
//! deterministic [`Xoshiro256`] generator.

use watchmen_crypto::field::{add_mod, inv_mod_prime, mul_mod, pow_mod, sub_mod};
use watchmen_crypto::rng::Xoshiro256;
use watchmen_crypto::schnorr::{Keypair, PublicKey, Signature, GROUP_ORDER};
use watchmen_crypto::{hmac_sha256, sha256};

const P: u64 = 1_000_000_007;
const CASES: usize = 256;

fn bytes_of(rng: &mut Xoshiro256, min: u64, max: u64) -> Vec<u8> {
    let n = min + rng.next_range(max - min);
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn field_add_sub_inverse() {
    let mut rng = Xoshiro256::new(21);
    for _ in 0..CASES {
        let (a, b) = (rng.next_range(P), rng.next_range(P));
        assert_eq!(sub_mod(add_mod(a, b, P), b, P), a);
        assert_eq!(add_mod(sub_mod(a, b, P), b, P), a);
    }
}

#[test]
fn field_mul_commutes_and_distributes() {
    let mut rng = Xoshiro256::new(22);
    for _ in 0..CASES {
        let (a, b, c) = (rng.next_range(P), rng.next_range(P), rng.next_range(P));
        assert_eq!(mul_mod(a, b, P), mul_mod(b, a, P));
        let left = mul_mod(a, add_mod(b, c, P), P);
        let right = add_mod(mul_mod(a, b, P), mul_mod(a, c, P), P);
        assert_eq!(left, right);
    }
}

#[test]
fn field_pow_laws() {
    let mut rng = Xoshiro256::new(23);
    for _ in 0..CASES {
        let a = 1 + rng.next_range(P - 1);
        let x = rng.next_range(1000);
        let y = rng.next_range(1000);
        let lhs = pow_mod(a, x + y, P);
        let rhs = mul_mod(pow_mod(a, x, P), pow_mod(a, y, P), P);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn field_inverse_multiplies_to_one() {
    let mut rng = Xoshiro256::new(24);
    for _ in 0..CASES {
        let a = 1 + rng.next_range(P - 1);
        let inv = inv_mod_prime(a, P).unwrap();
        assert_eq!(mul_mod(a, inv, P), 1);
    }
}

#[test]
fn sha256_deterministic_and_sensitive() {
    let mut rng = Xoshiro256::new(25);
    for _ in 0..64 {
        let data = bytes_of(&mut rng, 0, 300);
        assert_eq!(sha256(&data), sha256(&data));
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 1;
            assert_ne!(sha256(&data), sha256(&flipped));
        }
    }
}

#[test]
fn hmac_differs_by_key() {
    let mut rng = Xoshiro256::new(26);
    for _ in 0..64 {
        let key = bytes_of(&mut rng, 1, 100);
        let msg = bytes_of(&mut rng, 0, 100);
        let mut key2 = key.clone();
        key2[0] ^= 0xff;
        assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key2, &msg));
    }
}

#[test]
fn schnorr_roundtrip() {
    let mut rng = Xoshiro256::new(27);
    for _ in 0..64 {
        let keys = Keypair::generate(rng.next_u64());
        let msg = bytes_of(&mut rng, 0, 200);
        let sig = keys.sign(&msg);
        assert!(keys.public().verify(&msg, &sig));
    }
}

#[test]
fn schnorr_rejects_bit_flips() {
    let mut rng = Xoshiro256::new(28);
    for _ in 0..64 {
        let keys = Keypair::generate(rng.next_u64());
        let msg = bytes_of(&mut rng, 1, 100);
        let bit = rng.next_range(8);
        let sig = keys.sign(&msg);
        let mut tampered = msg.clone();
        tampered[0] ^= 1 << bit;
        assert!(!keys.public().verify(&tampered, &sig));
    }
}

#[test]
fn schnorr_signature_encoding_roundtrip() {
    let mut rng = Xoshiro256::new(29);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let msg = bytes_of(&mut rng, 0, 50);
        let sig = Keypair::generate(seed).sign(&msg);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
    }
}

#[test]
fn schnorr_pubkey_encoding_roundtrip() {
    let mut rng = Xoshiro256::new(30);
    for _ in 0..CASES {
        let pk = Keypair::generate(rng.next_u64()).public();
        assert_eq!(PublicKey::from_u64(pk.to_u64()), Some(pk));
    }
}

#[test]
fn rng_range_respects_bound() {
    let mut outer = Xoshiro256::new(31);
    for _ in 0..CASES {
        let seed = outer.next_u64();
        let bound = 1 + outer.next_range(1_000_000);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..32 {
            assert!(rng.next_range(bound) < bound);
        }
    }
}

#[test]
fn rng_same_seed_same_stream() {
    let mut outer = Xoshiro256::new(32);
    for _ in 0..CASES {
        let seed = outer.next_u64();
        let stream = outer.next_u64();
        let mut a = Xoshiro256::seed_from(seed, stream);
        let mut b = Xoshiro256::seed_from(seed, stream);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn scalars_in_range() {
    let mut rng = Xoshiro256::new(33);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let msg = bytes_of(&mut rng, 0, 30);
        let sig = Keypair::generate(seed).sign(&msg);
        let bytes = sig.to_bytes();
        let e = u64::from_be_bytes(bytes[..8].try_into().unwrap());
        let s = u64::from_be_bytes(bytes[8..].try_into().unwrap());
        assert!(e < GROUP_ORDER && s < GROUP_ORDER);
    }
}
