//! Lightweight Schnorr signatures over a 63-bit safe-prime group.
//!
//! The paper signs every forwarded message with a ~100-bit "lightweight
//! digital signature" so that proxies cannot tamper, replay or spoof. This
//! module provides the equivalent: 16-byte signatures whose sign/verify
//! cost is a few microseconds — negligible against the 50 ms frame budget.
//!
//! The group is the order-`q` subgroup of quadratic residues of
//! `Z_p*` for the safe prime `p = 2q + 1` below; the generator is `g = 4`.
//! See the crate-level security disclaimer: 63-bit moduli are a research
//! stand-in, not real-world security.

use std::fmt;

use crate::field::{add_mod, mul_mod, pow_mod};
use crate::rng::Xoshiro256;
use crate::sha256::Sha256;

/// The safe prime `p` (63 bits): `p = 2q + 1`.
pub const MODULUS: u64 = 4_611_686_018_427_394_499;
/// The prime group order `q = (p - 1) / 2`.
pub const GROUP_ORDER: u64 = 2_305_843_009_213_697_249;
/// The subgroup generator `g = 4` (a quadratic residue, hence of order `q`).
pub const GENERATOR: u64 = 4;

/// Encoded signature size in bytes (two 8-byte scalars ≈ the paper's
/// "100-bit" class).
pub const SIGNATURE_LEN: usize = 16;

/// A Schnorr public key.
///
/// # Examples
///
/// ```
/// use watchmen_crypto::schnorr::Keypair;
///
/// let keys = Keypair::generate(1);
/// let pk = keys.public();
/// assert!(pk.verify(b"msg", &keys.sign(b"msg")));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(u64);

/// A Schnorr secret key. Not `Copy`, to discourage accidental duplication.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(u64);

/// A keypair plus a deterministic nonce generator.
///
/// Nonces are derived per-signature from a hash of the secret key and the
/// message (deterministic signing à la RFC 6979), so no system randomness
/// is needed and signing is reproducible across simulation runs.
#[derive(Debug, Clone)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

/// A detached signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Challenge scalar `e = H(R ‖ X ‖ m) mod q`.
    e: u64,
    /// Response scalar `s = k + x·e mod q`.
    s: u64,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the scalar.
        f.write_str("SecretKey(<redacted>)")
    }
}

impl PublicKey {
    /// The group element as a raw scalar (for wire encoding).
    #[must_use]
    pub fn to_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a public key from its wire encoding.
    ///
    /// Returns `None` if the value is not a valid group element (zero, one,
    /// or `≥ p`).
    #[must_use]
    pub fn from_u64(x: u64) -> Option<Self> {
        (x > 1 && x < MODULUS && pow_mod(x, GROUP_ORDER, MODULUS) == 1).then_some(PublicKey(x))
    }

    /// Verifies `sig` over `message`.
    #[must_use]
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.e >= GROUP_ORDER || sig.s >= GROUP_ORDER {
            return false;
        }
        // R' = g^s · X^{-e};  X^{-e} = X^{q - e} because X has order q.
        let gs = pow_mod(GENERATOR, sig.s, MODULUS);
        let x_neg_e = pow_mod(self.0, GROUP_ORDER - sig.e, MODULUS);
        let r = mul_mod(gs, x_neg_e, MODULUS);
        challenge(r, self.0, message) == sig.e
    }
}

impl Keypair {
    /// Derives a keypair deterministically from a seed (e.g. a player id
    /// mixed with a game seed).
    #[must_use]
    pub fn generate(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from(seed, 0x5ee5_c0de);
        // x ∈ [1, q)
        let x = 1 + rng.next_range(GROUP_ORDER - 1);
        Keypair::from_secret_scalar(x)
    }

    /// Builds a keypair from a raw secret scalar, reducing it into `[1, q)`.
    #[must_use]
    pub fn from_secret_scalar(x: u64) -> Self {
        let x = 1 + (x % (GROUP_ORDER - 1));
        let public = PublicKey(pow_mod(GENERATOR, x, MODULUS));
        Keypair { secret: SecretKey(x), public }
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a deterministic per-message nonce.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        // k = H("nonce" ‖ x ‖ m) mod (q-1) + 1, never zero.
        let mut h = Sha256::new();
        h.update(b"watchmen-nonce-v1");
        h.update(&self.secret.0.to_be_bytes());
        h.update(message);
        let digest = h.finalize();
        let k =
            1 + (u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")) % (GROUP_ORDER - 1));
        let r = pow_mod(GENERATOR, k, MODULUS);
        let e = challenge(r, self.public.0, message);
        let s = add_mod(k % GROUP_ORDER, mul_mod(self.secret.0, e, GROUP_ORDER), GROUP_ORDER);
        Signature { e, s }
    }
}

impl Signature {
    /// Encodes the signature into 16 bytes.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Decodes a signature from its 16-byte encoding.
    ///
    /// Returns `None` if either scalar is out of range.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Option<Self> {
        let e = u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
        let s = u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes"));
        (e < GROUP_ORDER && s < GROUP_ORDER).then_some(Signature { e, s })
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig(e={:016x}, s={:016x})", self.e, self.s)
    }
}

/// Fiat–Shamir challenge `H(R ‖ X ‖ m) mod q`.
fn challenge(r: u64, public: u64, message: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"watchmen-schnorr-v1");
    h.update(&r.to_be_bytes());
    h.update(&public.to_be_bytes());
    h.update(message);
    let digest = h.finalize();
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes")) % GROUP_ORDER
}

/// A convenience check that a signature under `pk` binds `message`; the
/// negative spelling reads better at call sites that tally tamper events.
#[must_use]
pub fn is_tampered(pk: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    !pk.verify(message, sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::sub_mod;

    #[test]
    fn sign_verify_roundtrip() {
        let keys = Keypair::generate(42);
        for msg in [&b"a"[..], b"hello world", b"", &[0u8; 500]] {
            let sig = keys.sign(msg);
            assert!(keys.public().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let keys = Keypair::generate(1);
        let sig = keys.sign(b"position: (1, 2, 3)");
        assert!(!keys.public().verify(b"position: (9, 2, 3)", &sig));
        assert!(is_tampered(&keys.public(), b"position: (9, 2, 3)", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let alice = Keypair::generate(1);
        let mallory = Keypair::generate(2);
        let sig = alice.sign(b"msg");
        assert!(!mallory.public().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let keys = Keypair::generate(3);
        let sig = keys.sign(b"msg");
        let bad_e = Signature { e: sub_mod(sig.e, 1, GROUP_ORDER), ..sig };
        let bad_s = Signature { s: add_mod(sig.s, 1 % GROUP_ORDER, GROUP_ORDER), ..sig };
        assert!(!keys.public().verify(b"msg", &bad_e));
        assert!(!keys.public().verify(b"msg", &bad_s));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let keys = Keypair::generate(4);
        let sig = Signature { e: GROUP_ORDER, s: 1 };
        assert!(!keys.public().verify(b"msg", &sig));
    }

    #[test]
    fn signing_is_deterministic() {
        let keys = Keypair::generate(5);
        assert_eq!(keys.sign(b"m"), keys.sign(b"m"));
        assert_ne!(keys.sign(b"m"), keys.sign(b"n"));
    }

    #[test]
    fn encoding_roundtrip() {
        let keys = Keypair::generate(6);
        let sig = keys.sign(b"encode me");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), SIGNATURE_LEN);
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
        // Invalid scalars refuse to decode.
        let mut bad = bytes;
        bad[..8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert_eq!(Signature::from_bytes(&bad), None);
    }

    #[test]
    fn public_key_encoding_roundtrip() {
        let keys = Keypair::generate(7);
        let pk = keys.public();
        assert_eq!(PublicKey::from_u64(pk.to_u64()), Some(pk));
        assert_eq!(PublicKey::from_u64(0), None);
        assert_eq!(PublicKey::from_u64(1), None);
        assert_eq!(PublicKey::from_u64(MODULUS), None);
        // A non-residue is not in the subgroup. g is a QR; p - g is not
        // (since -1 is a non-residue mod a safe prime p ≡ 3 mod 4).
        assert_eq!(PublicKey::from_u64(MODULUS - GENERATOR), None);
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = Keypair::generate(100);
        let b = Keypair::generate(101);
        assert_ne!(a.public(), b.public());
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let keys = Keypair::generate(8);
        let dbg = format!("{keys:?}");
        assert!(dbg.contains("redacted"));
    }
}
