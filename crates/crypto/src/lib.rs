//! Cryptographic primitives for the Watchmen reproduction.
//!
//! The paper secures proxy-forwarded traffic with "lightweight (i.e., 100
//! bits, while state update messages are 700 bits on average) digital
//! signatures", and derives every player's proxy from a pseudo-random
//! number generator that all players evaluate identically. No cryptography
//! crates are available in this offline environment, so this crate builds
//! the required primitives from scratch:
//!
//! * [`Sha256`] — FIPS 180-4 SHA-256 (verified against NIST test vectors).
//! * [`hmac_sha256`] — RFC 2104 HMAC (verified against RFC 4231 vectors).
//! * [`schnorr`] — Schnorr signatures over a 63-bit safe-prime group,
//!   yielding 16-byte signatures: the same *size class* as the paper's
//!   100-bit scheme, with sign/verify costs far below the 50 ms frame
//!   budget.
//! * [`rng`] — SplitMix64 and Xoshiro256\*\* deterministic generators with a
//!   *stable, documented* output sequence. The verifiable proxy schedule
//!   depends on every node computing identical streams, so we do not use
//!   `rand`'s unspecified `StdRng` algorithm here.
//!
//! # Security disclaimer
//!
//! The Schnorr group modulus is 63 bits: **this is a research stand-in**,
//! faithful to the paper's "lightweight signature" size/cost trade-off, and
//! is trivially breakable by a determined adversary. Swap in a curve of
//! proper size for anything beyond protocol research.
//!
//! # Examples
//!
//! ```
//! use watchmen_crypto::schnorr::Keypair;
//!
//! let keys = Keypair::generate(7);
//! let sig = keys.sign(b"state update");
//! assert!(keys.public().verify(b"state update", &sig));
//! assert!(!keys.public().verify(b"forged update", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
mod hmac;
pub mod rng;
pub mod schnorr;
mod sha256;

pub use hmac::hmac_sha256;
pub use sha256::{sha256, Sha256};
