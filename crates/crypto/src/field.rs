//! Modular arithmetic over 64-bit moduli.
//!
//! Supports the Schnorr signature scheme in [`crate::schnorr`]. All values
//! fit in `u64`; products use `u128` intermediates so no multi-precision
//! arithmetic is needed.

/// `(a + b) mod m`.
///
/// # Panics
///
/// Panics in debug builds if `m == 0` or either operand is `≥ m`.
#[must_use]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0 && a < m && b < m);
    let s = (a as u128 + b as u128) % m as u128;
    s as u64
}

/// `(a - b) mod m`.
///
/// # Panics
///
/// Panics in debug builds if `m == 0` or either operand is `≥ m`.
#[must_use]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0 && a < m && b < m);
    if a >= b {
        a - b
    } else {
        m - (b - a)
    }
}

/// `(a * b) mod m` using a 128-bit intermediate.
///
/// # Panics
///
/// Panics in debug builds if `m == 0`.
#[must_use]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
///
/// `0^0` is defined as `1`.
///
/// # Panics
///
/// Panics in debug builds if `m == 0`.
#[must_use]
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut result: u64 = 1;
    let mut base = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    result
}

/// Modular inverse of `a` modulo prime `p`, via Fermat's little theorem.
///
/// Returns `None` if `a ≡ 0 (mod p)`.
///
/// # Panics
///
/// Panics in debug builds if `p < 2`. The result is only an inverse when
/// `p` is prime, which callers must guarantee.
#[must_use]
pub fn inv_mod_prime(a: u64, p: u64) -> Option<u64> {
    debug_assert!(p >= 2);
    let a = a % p;
    (a != 0).then(|| pow_mod(a, p - 2, p))
}

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs
/// (uses the first twelve primes as witnesses, sufficient below `3.3·10^24`).
///
/// # Examples
///
/// ```
/// use watchmen_crypto::field::is_prime;
/// assert!(is_prime(2305843009213697249));
/// assert!(!is_prime(1 << 40));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
    if n < 2 {
        return false;
    }
    for &p in &WITNESSES {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &WITNESSES {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::{GENERATOR, GROUP_ORDER, MODULUS};

    #[test]
    fn add_sub_roundtrip() {
        let m = 97;
        for a in 0..m {
            for b in 0..m {
                assert_eq!(sub_mod(add_mod(a, b, m), b, m), a);
            }
        }
    }

    #[test]
    fn mul_mod_large_operands() {
        let m = u64::MAX - 58; // large prime
        let a = m - 1;
        assert_eq!(mul_mod(a, a, m), 1); // (-1)^2 = 1
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(0, 0, 7), 1);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 7), 5);
        assert_eq!(pow_mod(7, 3, 1), 0);
    }

    #[test]
    fn fermat_little_theorem() {
        let p = 1_000_000_007u64;
        for a in [2u64, 42, 999_999_999] {
            assert_eq!(pow_mod(a, p - 1, p), 1);
        }
    }

    #[test]
    fn inverse_works() {
        let p = 1_000_000_007u64;
        for a in [1u64, 2, 12345, p - 1] {
            let inv = inv_mod_prime(a, p).unwrap();
            assert_eq!(mul_mod(a, inv, p), 1);
        }
        assert_eq!(inv_mod_prime(0, p), None);
        assert_eq!(inv_mod_prime(p, p), None);
    }

    #[test]
    fn primality_known_values() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(!is_prime(4));
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007u64 * 3));
        // Strong pseudoprime to base 2: 3215031751 = 151 × 751 × 28351.
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn schnorr_group_parameters_are_sound() {
        // The hardcoded group: p = 2q + 1, both prime, g of order q.
        assert!(is_prime(MODULUS));
        assert!(is_prime(GROUP_ORDER));
        assert_eq!(MODULUS, 2 * GROUP_ORDER + 1);
        assert_eq!(pow_mod(GENERATOR, GROUP_ORDER, MODULUS), 1);
        assert_ne!(pow_mod(GENERATOR, 1, MODULUS), 1);
    }
}
