//! Deterministic pseudo-random number generators with a stable output
//! sequence.
//!
//! The Watchmen proxy schedule is *verifiable*: "each player maintains a
//! pseudo-random number generator for each player, including himself,
//! initialized with the player's id and a common seed", so every node can
//! compute every node's proxy without communication. That only works if the
//! generator's output sequence is identical everywhere and never changes
//! between versions — hence this from-scratch implementation of the
//! published SplitMix64 and Xoshiro256\*\* algorithms rather than `rand`'s
//! unspecified `StdRng`.

/// SplitMix64 (Steele, Lea & Flood): a tiny, fast, well-distributed
/// generator, used here mainly to expand seeds for [`Xoshiro256`].
///
/// # Examples
///
/// ```
/// use watchmen_crypto::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Xoshiro256\*\* (Blackman & Vigna): the workhorse deterministic generator
/// used for the verifiable proxy schedule.
///
/// # Examples
///
/// ```
/// use watchmen_crypto::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(1, 2);
/// let x = rng.next_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` with SplitMix64, per the
    /// authors' recommendation.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is invalid; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }

    /// Creates a generator from two seed words (e.g. a common game seed and
    /// a player id), mixed so that nearby pairs yield unrelated streams.
    #[must_use]
    pub fn seed_from(common: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(common);
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(stream ^ 0x9e37_79b9_7f4a_7c15);
        let b = sm2.next_u64();
        Xoshiro256::new(a ^ b.rotate_left(17) ^ stream.wrapping_mul(0xd131_0ba6_98df_b5ac))
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` by Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range: zero bound");
        // Rejection sampling on the top bits to avoid modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A boolean that is `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_range((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_range(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_eq!(first, 6457827717110365317);
        assert_eq!(second, 3203168211198807973);
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn seed_from_streams_are_independent() {
        let mut a = Xoshiro256::seed_from(7, 0);
        let mut b = Xoshiro256::seed_from(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn next_range_bounds_and_coverage() {
        let mut rng = Xoshiro256::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.next_range(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn next_range_zero_panics() {
        Xoshiro256::new(0).next_range(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_roughly_uniform() {
        let mut rng = Xoshiro256::new(13);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_bool_probability() {
        let mut rng = Xoshiro256::new(17);
        let hits = (0..10_000).filter(|_| rng.next_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(!Xoshiro256::new(1).next_bool(0.0));
        assert!(Xoshiro256::new(1).next_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = Xoshiro256::new(29);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let one = [42];
        assert_eq!(rng.choose(&one), Some(&42));
    }
}
