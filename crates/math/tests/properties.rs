//! Property-based tests for the math crate's invariants.

use proptest::prelude::*;
use watchmen_math::poly::{area_between, dead_reckon_path, Polyline};
use watchmen_math::stats::{percentile, Running};
use watchmen_math::{grid, wrap_angle, Aim, Cone, Segment, Vec3};

fn small_vec3() -> impl Strategy<Value = Vec3> {
    (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec_add_commutes(a in small_vec3(), b in small_vec3()) {
        prop_assert!((a + b).approx_eq(b + a, 1e-9));
    }

    #[test]
    fn vec_normalized_has_unit_length(v in small_vec3()) {
        if let Some(n) = v.normalized() {
            prop_assert!((n.length() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vec_clamp_length_never_exceeds(v in small_vec3(), cap in 0.0..100.0f64) {
        prop_assert!(v.clamp_length(cap).length() <= cap + 1e-9);
    }

    #[test]
    fn cross_is_orthogonal(a in small_vec3(), b in small_vec3()) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-3);
        prop_assert!(c.dot(b).abs() < 1e-3);
    }

    #[test]
    fn wrap_angle_in_range(a in -100.0..100.0f64) {
        let w = wrap_angle(a);
        prop_assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        // Wrapping preserves the angle modulo 2π.
        prop_assert!(((a - w) / std::f64::consts::TAU).rem_euclid(1.0) < 1e-6
            || ((a - w) / std::f64::consts::TAU).rem_euclid(1.0) > 1.0 - 1e-6);
    }

    #[test]
    fn aim_direction_is_unit(yaw in -10.0..10.0f64, pitch in -2.0..2.0f64) {
        let d = Aim::new(yaw, pitch).direction();
        prop_assert!((d.length() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cone_deviation_zero_iff_contains(p in small_vec3()) {
        let cone = Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0);
        if cone.contains(p) {
            prop_assert_eq!(cone.deviation(p), 0.0);
        } else {
            prop_assert!(cone.deviation(p) > 0.0);
        }
    }

    #[test]
    fn cone_contains_matches_bruteforce(p in small_vec3()) {
        let cone = Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0);
        let v = p - cone.apex();
        let brute = v.length() <= 100.0
            && (v.length() < 1e-9 || cone.axis().angle_between(v) <= 60f64.to_radians() + 1e-9);
        prop_assert_eq!(cone.contains(p), brute);
    }

    #[test]
    fn segment_closest_point_is_closest(a in small_vec3(), b in small_vec3(), p in small_vec3()) {
        let seg = Segment::new(a, b);
        let d = seg.distance_to_point(p);
        for t in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            prop_assert!(d <= seg.point_at(t).distance(p) + 1e-9);
        }
    }

    #[test]
    fn dda_traversal_is_4_connected(from in small_vec3(), to in small_vec3()) {
        let cells = grid::traverse(from, to, 16.0);
        prop_assert_eq!(cells[0], grid::cell_of(from, 16.0));
        for w in cells.windows(2) {
            prop_assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }

    #[test]
    fn area_between_nonnegative_and_symmetric(
        pts_a in prop::collection::vec(small_vec3(), 2..10),
        pts_b in prop::collection::vec(small_vec3(), 2..10),
    ) {
        let a = Polyline::from_points(pts_a);
        let b = Polyline::from_points(pts_b);
        let ab = area_between(&a, &b, 16);
        let ba = area_between(&b, &a, 16);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6 * (1.0 + ab.abs()));
    }

    #[test]
    fn area_between_self_is_zero(pts in prop::collection::vec(small_vec3(), 2..10)) {
        let line = Polyline::from_points(pts);
        prop_assert_eq!(area_between(&line, &line, 16), 0.0);
    }

    #[test]
    fn dead_reckoning_path_is_straight(
        pos in small_vec3(),
        vel in small_vec3(),
        frames in 1usize..40,
    ) {
        let path = dead_reckon_path(pos, vel, frames, 0.05);
        prop_assert_eq!(path.len(), frames + 1);
        // Constant velocity: equal spacing between consecutive samples.
        let step = vel.length() * 0.05;
        for w in path.points().windows(2) {
            prop_assert!((w[0].distance(w[1]) - step).abs() < 1e-6);
        }
    }

    #[test]
    fn running_mean_within_minmax(xs in prop::collection::vec(-1e6..1e6f64, 1..100)) {
        let r: Running = xs.iter().copied().collect();
        prop_assert!(r.mean() >= r.min() - 1e-9);
        prop_assert!(r.mean() <= r.max() + 1e-9);
        prop_assert!(r.variance() >= 0.0);
    }

    #[test]
    fn percentile_is_monotone(xs in prop::collection::vec(-1e6..1e6f64, 1..100)) {
        let p25 = percentile(&xs, 0.25).unwrap();
        let p50 = percentile(&xs, 0.50).unwrap();
        let p75 = percentile(&xs, 0.75).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn polyline_sample_stays_on_hull_bounds(
        pts in prop::collection::vec(small_vec3(), 2..10),
        u in 0.0..1.0f64,
    ) {
        let line = Polyline::from_points(pts.clone());
        let s = line.sample_by_time(u);
        let min = pts.iter().copied().reduce(Vec3::min).unwrap();
        let max = pts.iter().copied().reduce(Vec3::max).unwrap();
        prop_assert!(s.x >= min.x - 1e-9 && s.x <= max.x + 1e-9);
        prop_assert!(s.y >= min.y - 1e-9 && s.y <= max.y + 1e-9);
        prop_assert!(s.z >= min.z - 1e-9 && s.z <= max.z + 1e-9);
    }
}
