//! Randomized property tests for the math crate's invariants, driven by
//! the workspace's own deterministic [`Xoshiro256`] generator.

use watchmen_crypto::rng::Xoshiro256;
use watchmen_math::poly::{area_between, dead_reckon_path, Polyline};
use watchmen_math::stats::{percentile, Running};
use watchmen_math::{grid, wrap_angle, Aim, Cone, Segment, Vec3};

const CASES: usize = 256;

fn f64_in(rng: &mut Xoshiro256, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn small_vec3(rng: &mut Xoshiro256) -> Vec3 {
    Vec3::new(f64_in(rng, -1e3, 1e3), f64_in(rng, -1e3, 1e3), f64_in(rng, -1e3, 1e3))
}

fn vec_of_vec3(rng: &mut Xoshiro256, min: u64, max: u64) -> Vec<Vec3> {
    let n = min + rng.next_range(max - min);
    (0..n).map(|_| small_vec3(rng)).collect()
}

#[test]
fn vec_add_commutes() {
    let mut rng = Xoshiro256::new(1);
    for _ in 0..CASES {
        let (a, b) = (small_vec3(&mut rng), small_vec3(&mut rng));
        assert!((a + b).approx_eq(b + a, 1e-9));
    }
}

#[test]
fn vec_normalized_has_unit_length() {
    let mut rng = Xoshiro256::new(2);
    for _ in 0..CASES {
        let v = small_vec3(&mut rng);
        if let Some(n) = v.normalized() {
            assert!((n.length() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn vec_clamp_length_never_exceeds() {
    let mut rng = Xoshiro256::new(3);
    for _ in 0..CASES {
        let v = small_vec3(&mut rng);
        let cap = f64_in(&mut rng, 0.0, 100.0);
        assert!(v.clamp_length(cap).length() <= cap + 1e-9);
    }
}

#[test]
fn cross_is_orthogonal() {
    let mut rng = Xoshiro256::new(4);
    for _ in 0..CASES {
        let (a, b) = (small_vec3(&mut rng), small_vec3(&mut rng));
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-3);
        assert!(c.dot(b).abs() < 1e-3);
    }
}

#[test]
fn wrap_angle_in_range() {
    let mut rng = Xoshiro256::new(5);
    for _ in 0..CASES {
        let a = f64_in(&mut rng, -100.0, 100.0);
        let w = wrap_angle(a);
        assert!(w > -std::f64::consts::PI - 1e-12 && w <= std::f64::consts::PI + 1e-12);
        // Wrapping preserves the angle modulo 2π.
        let turns = ((a - w) / std::f64::consts::TAU).rem_euclid(1.0);
        assert!(!(1e-6..=1.0 - 1e-6).contains(&turns), "angle {a} wrapped to {w}");
    }
}

#[test]
fn aim_direction_is_unit() {
    let mut rng = Xoshiro256::new(6);
    for _ in 0..CASES {
        let yaw = f64_in(&mut rng, -10.0, 10.0);
        let pitch = f64_in(&mut rng, -2.0, 2.0);
        let d = Aim::new(yaw, pitch).direction();
        assert!((d.length() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn cone_deviation_zero_iff_contains() {
    let mut rng = Xoshiro256::new(7);
    let cone = Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0);
    for _ in 0..CASES {
        let p = small_vec3(&mut rng);
        if cone.contains(p) {
            assert_eq!(cone.deviation(p), 0.0);
        } else {
            assert!(cone.deviation(p) > 0.0);
        }
    }
}

#[test]
fn cone_contains_matches_bruteforce() {
    let mut rng = Xoshiro256::new(8);
    let cone = Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0);
    for _ in 0..CASES {
        let p = small_vec3(&mut rng);
        let v = p - cone.apex();
        let brute = v.length() <= 100.0
            && (v.length() < 1e-9 || cone.axis().angle_between(v) <= 60f64.to_radians() + 1e-9);
        assert_eq!(cone.contains(p), brute, "at {p:?}");
    }
}

#[test]
fn segment_closest_point_is_closest() {
    let mut rng = Xoshiro256::new(9);
    for _ in 0..CASES {
        let seg = Segment::new(small_vec3(&mut rng), small_vec3(&mut rng));
        let p = small_vec3(&mut rng);
        let d = seg.distance_to_point(p);
        for t in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            assert!(d <= seg.point_at(t).distance(p) + 1e-9);
        }
    }
}

#[test]
fn dda_traversal_is_4_connected() {
    let mut rng = Xoshiro256::new(10);
    for _ in 0..CASES {
        let from = small_vec3(&mut rng);
        let to = small_vec3(&mut rng);
        let cells = grid::traverse(from, to, 16.0);
        assert_eq!(cells[0], grid::cell_of(from, 16.0));
        for w in cells.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1);
        }
    }
}

#[test]
fn area_between_nonnegative_and_symmetric() {
    let mut rng = Xoshiro256::new(11);
    for _ in 0..64 {
        let a = Polyline::from_points(vec_of_vec3(&mut rng, 2, 10));
        let b = Polyline::from_points(vec_of_vec3(&mut rng, 2, 10));
        let ab = area_between(&a, &b, 16);
        let ba = area_between(&b, &a, 16);
        assert!(ab >= 0.0);
        assert!((ab - ba).abs() < 1e-6 * (1.0 + ab.abs()));
    }
}

#[test]
fn area_between_self_is_zero() {
    let mut rng = Xoshiro256::new(12);
    for _ in 0..64 {
        let line = Polyline::from_points(vec_of_vec3(&mut rng, 2, 10));
        assert_eq!(area_between(&line, &line, 16), 0.0);
    }
}

#[test]
fn dead_reckoning_path_is_straight() {
    let mut rng = Xoshiro256::new(13);
    for _ in 0..CASES {
        let pos = small_vec3(&mut rng);
        let vel = small_vec3(&mut rng);
        let frames = 1 + rng.next_range(39) as usize;
        let path = dead_reckon_path(pos, vel, frames, 0.05);
        assert_eq!(path.len(), frames + 1);
        // Constant velocity: equal spacing between consecutive samples.
        let step = vel.length() * 0.05;
        for w in path.points().windows(2) {
            assert!((w[0].distance(w[1]) - step).abs() < 1e-6);
        }
    }
}

#[test]
fn running_mean_within_minmax() {
    let mut rng = Xoshiro256::new(14);
    for _ in 0..CASES {
        let n = 1 + rng.next_range(99);
        let xs: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, -1e6, 1e6)).collect();
        let r: Running = xs.iter().copied().collect();
        assert!(r.mean() >= r.min() - 1e-9);
        assert!(r.mean() <= r.max() + 1e-9);
        assert!(r.variance() >= 0.0);
    }
}

#[test]
fn percentile_is_monotone() {
    let mut rng = Xoshiro256::new(15);
    for _ in 0..CASES {
        let n = 1 + rng.next_range(99);
        let xs: Vec<f64> = (0..n).map(|_| f64_in(&mut rng, -1e6, 1e6)).collect();
        let p25 = percentile(&xs, 0.25).unwrap();
        let p50 = percentile(&xs, 0.50).unwrap();
        let p75 = percentile(&xs, 0.75).unwrap();
        assert!(p25 <= p50 && p50 <= p75);
    }
}

#[test]
fn polyline_sample_stays_on_hull_bounds() {
    let mut rng = Xoshiro256::new(16);
    for _ in 0..CASES {
        let pts = vec_of_vec3(&mut rng, 2, 10);
        let u = rng.next_f64();
        let line = Polyline::from_points(pts.clone());
        let s = line.sample_by_time(u);
        let min = pts.iter().copied().reduce(Vec3::min).unwrap();
        let max = pts.iter().copied().reduce(Vec3::max).unwrap();
        assert!(s.x >= min.x - 1e-9 && s.x <= max.x + 1e-9);
        assert!(s.y >= min.y - 1e-9 && s.y <= max.y + 1e-9);
        assert!(s.z >= min.z - 1e-9 && s.z <= max.z + 1e-9);
    }
}
