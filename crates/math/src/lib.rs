//! Geometric and statistical primitives for the Watchmen reproduction.
//!
//! This crate is the lowest layer of the workspace: it knows nothing about
//! games, networks or cheating. It provides:
//!
//! * [`Vec3`] — a small 3-D vector type used for positions, velocities and
//!   aim directions.
//! * [`Aim`] — yaw/pitch orientation with wrap-around arithmetic.
//! * [`Cone`] — the spherical vision cone used by the Watchmen vision set,
//!   including the *distance-to-cone* deviation metric used by subscription
//!   verification.
//! * [`Segment`] and [`Ray`] — closest-point and intersection queries.
//! * [`Aabb`] — axis-aligned boxes for map geometry.
//! * [`poly`] — polyline trajectories and the *area between trajectories*
//!   deviation metric used by dead-reckoning verification.
//! * [`grid`] — 2-D cell indexing and DDA traversal used by occlusion
//!   raycasts.
//! * [`stats`] — running means, standard deviations, histograms and
//!   percentiles used by the verification thresholds (`a ≤ ā + σ_a`) and the
//!   experiment harness.
//!
//! # Examples
//!
//! ```
//! use watchmen_math::{Vec3, Cone};
//!
//! let eye = Vec3::new(0.0, 0.0, 0.0);
//! let aim = Vec3::new(1.0, 0.0, 0.0);
//! let cone = Cone::new(eye, aim, 60f64.to_radians(), 100.0);
//! assert!(cone.contains(Vec3::new(50.0, 10.0, 0.0)));
//! assert!(!cone.contains(Vec3::new(-5.0, 0.0, 0.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod aim;
mod cone;
pub mod grid;
pub mod poly;
mod segment;
pub mod stats;
mod vec3;

pub use aabb::Aabb;
pub use aim::{wrap_angle, Aim};
pub use cone::Cone;
pub use segment::{Ray, Segment};
pub use vec3::Vec3;

/// A small tolerance used by geometric comparisons throughout the workspace.
pub const EPSILON: f64 = 1e-9;

/// Clamps `x` into `[lo, hi]`.
///
/// # Examples
///
/// ```
/// assert_eq!(watchmen_math::clamp(5.0, 0.0, 2.0), 2.0);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
#[must_use]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    x.max(lo).min(hi)
}

/// Linear interpolation between `a` and `b` with parameter `t ∈ [0, 1]`.
///
/// `t` outside the unit interval extrapolates.
///
/// # Examples
///
/// ```
/// assert_eq!(watchmen_math::lerp(0.0, 10.0, 0.25), 2.5);
/// ```
#[must_use]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(3.0, 7.0, 0.0), 3.0);
        assert_eq!(lerp(3.0, 7.0, 1.0), 7.0);
        assert_eq!(lerp(3.0, 7.0, 0.5), 5.0);
    }
}
