//! Yaw/pitch orientation with wrap-around arithmetic.

use std::f64::consts::{PI, TAU};
use std::fmt;

use crate::Vec3;

/// An aim direction expressed as yaw and pitch, both in radians.
///
/// * **Yaw** rotates around the vertical (`z`) axis: `0` looks along `+x`,
///   `π/2` along `+y`. Stored normalized into `(-π, π]`.
/// * **Pitch** tilts up/down: positive looks up. Clamped into `[-π/2, π/2]`.
///
/// # Examples
///
/// ```
/// use watchmen_math::{Aim, Vec3};
///
/// let aim = Aim::new(0.0, 0.0);
/// assert!(aim.direction().approx_eq(Vec3::X, 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aim {
    yaw: f64,
    pitch: f64,
}

impl Aim {
    /// Creates an aim from raw yaw/pitch radians, normalizing yaw and
    /// clamping pitch.
    #[must_use]
    pub fn new(yaw: f64, pitch: f64) -> Self {
        Aim { yaw: wrap_angle(yaw), pitch: crate::clamp(pitch, -PI / 2.0, PI / 2.0) }
    }

    /// The aim whose direction best matches `dir`.
    ///
    /// Returns the default aim (yaw 0, pitch 0) for a (near-)zero vector.
    #[must_use]
    pub fn from_direction(dir: Vec3) -> Self {
        match dir.normalized() {
            Some(d) => Aim::new(d.y.atan2(d.x), d.z.asin()),
            None => Aim::default(),
        }
    }

    /// Yaw in radians, normalized into `(-π, π]`.
    #[must_use]
    pub fn yaw(self) -> f64 {
        self.yaw
    }

    /// Pitch in radians, in `[-π/2, π/2]`.
    #[must_use]
    pub fn pitch(self) -> f64 {
        self.pitch
    }

    /// The unit direction vector this aim looks along.
    #[must_use]
    pub fn direction(self) -> Vec3 {
        let (sy, cy) = self.yaw.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        Vec3::new(cy * cp, sy * cp, sp)
    }

    /// Returns a new aim rotated by the given yaw/pitch deltas.
    #[must_use]
    pub fn rotated(self, d_yaw: f64, d_pitch: f64) -> Self {
        Aim::new(self.yaw + d_yaw, self.pitch + d_pitch)
    }

    /// The angular distance (radians) between the two aim directions, in
    /// `[0, π]`.
    #[must_use]
    pub fn angular_distance(self, other: Aim) -> f64 {
        self.direction().angle_between(other.direction())
    }

    /// Maximum per-axis angular change between the two aims; used by
    /// verification to bound angular speed.
    #[must_use]
    pub fn max_component_delta(self, other: Aim) -> f64 {
        let dy = wrap_angle(self.yaw - other.yaw).abs();
        let dp = (self.pitch - other.pitch).abs();
        dy.max(dp)
    }
}

impl fmt::Display for Aim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaw {:.1}° pitch {:.1}°", self.yaw.to_degrees(), self.pitch.to_degrees())
    }
}

/// Normalizes an angle into `(-π, π]`.
///
/// # Examples
///
/// ```
/// use std::f64::consts::PI;
/// let a = watchmen_math::wrap_angle(3.0 * PI);
/// assert!((a - PI).abs() < 1e-12);
/// ```
#[must_use]
pub fn wrap_angle(a: f64) -> f64 {
    let mut a = a % TAU;
    if a <= -PI {
        a += TAU;
    } else if a > PI {
        a -= TAU;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_angle_range() {
        for k in -5..=5 {
            let a = wrap_angle(0.3 + k as f64 * TAU);
            assert!((a - 0.3).abs() < 1e-9, "k={k} a={a}");
        }
        assert!((wrap_angle(PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn direction_cardinals() {
        assert!(Aim::new(0.0, 0.0).direction().approx_eq(Vec3::X, 1e-12));
        assert!(Aim::new(PI / 2.0, 0.0).direction().approx_eq(Vec3::Y, 1e-12));
        assert!(Aim::new(0.0, PI / 2.0).direction().approx_eq(Vec3::Z, 1e-12));
    }

    #[test]
    fn direction_roundtrip() {
        for &(yaw, pitch) in &[(0.5, 0.2), (-2.0, -0.7), (3.0, 1.2), (-3.1, 0.0)] {
            let aim = Aim::new(yaw, pitch);
            let back = Aim::from_direction(aim.direction());
            assert!(back.angular_distance(aim) < 1e-9, "{aim} vs {back}");
        }
    }

    #[test]
    fn pitch_is_clamped() {
        let aim = Aim::new(0.0, 10.0);
        assert_eq!(aim.pitch(), PI / 2.0);
        let aim = Aim::new(0.0, -10.0);
        assert_eq!(aim.pitch(), -PI / 2.0);
    }

    #[test]
    fn from_zero_direction_is_default() {
        assert_eq!(Aim::from_direction(Vec3::ZERO), Aim::default());
    }

    #[test]
    fn rotation_accumulates_with_wrap() {
        let mut aim = Aim::new(PI - 0.1, 0.0);
        aim = aim.rotated(0.2, 0.0);
        assert!((aim.yaw() - (-PI + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn angular_distance_symmetric() {
        let a = Aim::new(0.3, 0.1);
        let b = Aim::new(-1.2, -0.4);
        assert!((a.angular_distance(b) - b.angular_distance(a)).abs() < 1e-12);
        assert_eq!(a.angular_distance(a), 0.0);
    }

    #[test]
    fn max_component_delta_handles_wrap() {
        let a = Aim::new(PI - 0.05, 0.0);
        let b = Aim::new(-PI + 0.05, 0.0);
        assert!(a.max_component_delta(b) < 0.11);
    }
}
