//! 2-D cell indexing and DDA grid traversal.
//!
//! The world substrate stores maps as uniform grids of tiles; occlusion
//! queries ("is q behind a wall from p?") walk the grid cells crossed by the
//! sight line using the classic Amanatides–Woo DDA traversal implemented
//! here.

use crate::Vec3;

/// A cell coordinate in a 2-D grid.
///
/// # Examples
///
/// ```
/// use watchmen_math::grid::Cell;
/// let c = Cell::new(3, 4);
/// assert_eq!(c.x, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cell {
    /// Column index.
    pub x: i32,
    /// Row index.
    pub y: i32,
}

impl Cell {
    /// Creates a cell coordinate.
    #[must_use]
    pub const fn new(x: i32, y: i32) -> Self {
        Cell { x, y }
    }

    /// Manhattan distance to another cell.
    #[must_use]
    pub fn manhattan(self, other: Cell) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The 4-neighborhood (up, down, left, right).
    #[must_use]
    pub fn neighbors4(self) -> [Cell; 4] {
        [
            Cell::new(self.x + 1, self.y),
            Cell::new(self.x - 1, self.y),
            Cell::new(self.x, self.y + 1),
            Cell::new(self.x, self.y - 1),
        ]
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Maps a world-space position to the cell containing it, for square cells
/// of side `cell_size` anchored at the origin.
///
/// # Panics
///
/// Panics in debug builds if `cell_size` is not positive.
#[must_use]
pub fn cell_of(p: Vec3, cell_size: f64) -> Cell {
    debug_assert!(cell_size > 0.0);
    Cell::new((p.x / cell_size).floor() as i32, (p.y / cell_size).floor() as i32)
}

/// The world-space center of a cell (at `z = 0`).
#[must_use]
pub fn cell_center(c: Cell, cell_size: f64) -> Vec3 {
    Vec3::new((c.x as f64 + 0.5) * cell_size, (c.y as f64 + 0.5) * cell_size, 0.0)
}

/// Walks every grid cell crossed by the 2-D projection of the segment
/// `from → to` (Amanatides–Woo DDA), including the start and end cells, in
/// order.
///
/// The vertical (`z`) component is ignored; occlusion against floor/wall
/// heights is layered on top by the world crate.
///
/// # Examples
///
/// ```
/// use watchmen_math::grid::{traverse, Cell};
/// use watchmen_math::Vec3;
///
/// let cells = traverse(Vec3::new(0.5, 0.5, 0.0), Vec3::new(2.5, 0.5, 0.0), 1.0);
/// assert_eq!(cells, vec![Cell::new(0, 0), Cell::new(1, 0), Cell::new(2, 0)]);
/// ```
///
/// # Panics
///
/// Panics in debug builds if `cell_size` is not positive.
#[must_use]
pub fn traverse(from: Vec3, to: Vec3, cell_size: f64) -> Vec<Cell> {
    let mut cells = Vec::new();
    traverse_with(from, to, cell_size, |c| {
        cells.push(c);
        true
    });
    cells
}

/// Walks the same cells as [`traverse`] without allocating, invoking
/// `visit` for each cell in order; the walk stops early when `visit`
/// returns `false`. Returns `true` if the walk reached the end cell.
///
/// This is the hot path behind occlusion queries (`O(players²)` line-of-
/// sight tests per frame in the overlay simulations).
///
/// # Panics
///
/// Panics in debug builds if `cell_size` is not positive.
pub fn traverse_with(
    from: Vec3,
    to: Vec3,
    cell_size: f64,
    mut visit: impl FnMut(Cell) -> bool,
) -> bool {
    debug_assert!(cell_size > 0.0);
    let start = cell_of(from, cell_size);
    let end = cell_of(to, cell_size);
    if !visit(start) {
        return false;
    }
    if start == end {
        return true;
    }

    let dx = to.x - from.x;
    let dy = to.y - from.y;
    let step_x: i32 = if dx > 0.0 { 1 } else { -1 };
    let step_y: i32 = if dy > 0.0 { 1 } else { -1 };

    // Parametric distance (as fraction of the segment) to the first vertical
    // / horizontal cell boundary, and per-cell increments.
    let next_boundary = |coord: f64, cell: i32, step: i32| -> f64 {
        let edge = if step > 0 { (cell + 1) as f64 * cell_size } else { cell as f64 * cell_size };
        edge - coord
    };

    let mut t_max_x = if dx.abs() < crate::EPSILON {
        f64::INFINITY
    } else {
        next_boundary(from.x, start.x, step_x) / dx
    };
    let mut t_max_y = if dy.abs() < crate::EPSILON {
        f64::INFINITY
    } else {
        next_boundary(from.y, start.y, step_y) / dy
    };
    let t_delta_x = if dx.abs() < crate::EPSILON { f64::INFINITY } else { cell_size / dx.abs() };
    let t_delta_y = if dy.abs() < crate::EPSILON { f64::INFINITY } else { cell_size / dy.abs() };

    let mut cur = start;
    // Upper bound on steps guards against float pathologies.
    let max_steps = (start.manhattan(end) + 2) as usize;
    for _ in 0..max_steps {
        if t_max_x < t_max_y {
            t_max_x += t_delta_x;
            cur.x += step_x;
        } else {
            t_max_y += t_delta_y;
            cur.y += step_y;
        }
        if !visit(cur) {
            return false;
        }
        if cur == end {
            return true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_floors() {
        assert_eq!(cell_of(Vec3::new(0.1, 0.9, 5.0), 1.0), Cell::new(0, 0));
        assert_eq!(cell_of(Vec3::new(-0.1, 2.0, 0.0), 1.0), Cell::new(-1, 2));
        assert_eq!(cell_of(Vec3::new(7.9, 3.2, 0.0), 4.0), Cell::new(1, 0));
    }

    #[test]
    fn cell_center_roundtrip() {
        let c = Cell::new(3, -2);
        assert_eq!(cell_of(cell_center(c, 2.5), 2.5), c);
    }

    #[test]
    fn traverse_horizontal() {
        let cells = traverse(Vec3::new(0.5, 0.5, 0.0), Vec3::new(3.5, 0.5, 0.0), 1.0);
        assert_eq!(cells, vec![Cell::new(0, 0), Cell::new(1, 0), Cell::new(2, 0), Cell::new(3, 0)]);
    }

    #[test]
    fn traverse_vertical_negative() {
        let cells = traverse(Vec3::new(0.5, 0.5, 0.0), Vec3::new(0.5, -1.5, 0.0), 1.0);
        assert_eq!(cells, vec![Cell::new(0, 0), Cell::new(0, -1), Cell::new(0, -2)]);
    }

    #[test]
    fn traverse_diagonal_connects() {
        let cells = traverse(Vec3::new(0.2, 0.2, 0.0), Vec3::new(2.8, 2.8, 0.0), 1.0);
        assert_eq!(cells.first(), Some(&Cell::new(0, 0)));
        assert_eq!(cells.last(), Some(&Cell::new(2, 2)));
        // Consecutive cells are 4-adjacent (DDA never jumps corners).
        for w in cells.windows(2) {
            assert_eq!(w[0].manhattan(w[1]), 1, "{:?}", cells);
        }
    }

    #[test]
    fn traverse_same_cell() {
        let cells = traverse(Vec3::new(0.1, 0.1, 0.0), Vec3::new(0.9, 0.9, 0.0), 1.0);
        assert_eq!(cells, vec![Cell::new(0, 0)]);
    }

    #[test]
    fn traverse_ignores_z() {
        let cells = traverse(Vec3::new(0.5, 0.5, 0.0), Vec3::new(1.5, 0.5, 99.0), 1.0);
        assert_eq!(cells, vec![Cell::new(0, 0), Cell::new(1, 0)]);
    }

    #[test]
    fn neighbors_and_manhattan() {
        let c = Cell::new(0, 0);
        assert_eq!(c.manhattan(Cell::new(3, -4)), 7);
        assert_eq!(c.neighbors4().len(), 4);
        assert!(!format!("{c}").is_empty());
    }

    #[test]
    fn traverse_end_reached_from_any_direction() {
        for &(fx, fy, tx, ty) in
            &[(0.5, 0.5, -2.5, -1.5), (0.5, 0.5, -2.5, 1.5), (0.5, 0.5, 2.5, -3.5)]
        {
            let cells = traverse(Vec3::new(fx, fy, 0.0), Vec3::new(tx, ty, 0.0), 1.0);
            assert_eq!(*cells.last().unwrap(), cell_of(Vec3::new(tx, ty, 0.0), 1.0));
        }
    }
}
