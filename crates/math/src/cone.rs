//! The spherical vision cone used by the Watchmen vision set.

use std::fmt;

use crate::{Vec3, EPSILON};

/// A spherical cone: the set of points within `radius` of `apex` whose
/// direction from the apex is within `half_angle` of `axis`.
///
/// This is the geometric model of a player's *vision set* region in the
/// paper (Figure 2): a fixed-radius cone of ±60° around the avatar's aim,
/// made slightly larger than the true field of view to absorb rapid spins.
///
/// # Examples
///
/// ```
/// use watchmen_math::{Cone, Vec3};
///
/// let cone = Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0);
/// assert!(cone.contains(Vec3::new(10.0, 5.0, 0.0)));
/// assert!(!cone.contains(Vec3::new(200.0, 0.0, 0.0))); // beyond radius
/// assert!(!cone.contains(Vec3::new(-10.0, 0.0, 0.0))); // behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cone {
    apex: Vec3,
    axis: Vec3,
    half_angle: f64,
    radius: f64,
}

impl Cone {
    /// Creates a cone from its apex, axis direction, half-angle (radians)
    /// and radius.
    ///
    /// The axis is normalized internally; a zero axis falls back to `+x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `half_angle` is outside `(0, π]` or
    /// `radius` is not positive.
    #[must_use]
    pub fn new(apex: Vec3, axis: Vec3, half_angle: f64, radius: f64) -> Self {
        debug_assert!(half_angle > 0.0 && half_angle <= std::f64::consts::PI);
        debug_assert!(radius > 0.0);
        Cone { apex, axis: axis.normalized_or(Vec3::X), half_angle, radius }
    }

    /// The cone's apex (the viewer's eye position).
    #[must_use]
    pub fn apex(&self) -> Vec3 {
        self.apex
    }

    /// The normalized view axis.
    #[must_use]
    pub fn axis(&self) -> Vec3 {
        self.axis
    }

    /// The half-angle in radians.
    #[must_use]
    pub fn half_angle(&self) -> f64 {
        self.half_angle
    }

    /// The cone radius (view distance).
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Returns `true` if `p` lies inside the spherical cone.
    ///
    /// Points exactly at the apex are considered inside.
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        let v = p - self.apex;
        let dist = v.length();
        if dist > self.radius {
            return false;
        }
        if dist <= EPSILON {
            return true;
        }
        self.axis.angle_between(v) <= self.half_angle + EPSILON
    }

    /// The *deviation* of a point from the cone: `0.0` for points inside,
    /// otherwise an increasing measure of how far outside they are.
    ///
    /// The paper uses "the distance between q and p's vision cone … as a
    /// metric of the deviation" when a proxy rates an unjustified VS
    /// subscription. We combine the radial excess (how far beyond the cone
    /// radius) and the arc excess (angular excess converted to an arc length
    /// at the point's range), taking the larger of the two. This is exact on
    /// the axis/sphere boundaries and a tight upper-bound approximation
    /// elsewhere, which is all the rating system needs.
    #[must_use]
    pub fn deviation(&self, p: Vec3) -> f64 {
        let v = p - self.apex;
        let dist = v.length();
        if dist <= EPSILON {
            return 0.0;
        }
        let radial_excess = (dist - self.radius).max(0.0);
        let angular_excess = (self.axis.angle_between(v) - self.half_angle).max(0.0);
        // Arc length at the clamped range: how far the point would have to
        // travel around the apex to re-enter the cone.
        let arc = angular_excess * dist.min(self.radius);
        radial_excess.max(arc)
    }
}

impl fmt::Display for Cone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cone(apex {}, axis {}, ±{:.1}°, r {:.1})",
            self.apex,
            self.axis,
            self.half_angle.to_degrees(),
            self.radius
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cone() -> Cone {
        Cone::new(Vec3::ZERO, Vec3::X, 60f64.to_radians(), 100.0)
    }

    #[test]
    fn contains_axis_points() {
        let c = unit_cone();
        assert!(c.contains(Vec3::new(1.0, 0.0, 0.0)));
        assert!(c.contains(Vec3::new(100.0, 0.0, 0.0)));
        assert!(!c.contains(Vec3::new(100.1, 0.0, 0.0)));
    }

    #[test]
    fn contains_apex() {
        assert!(unit_cone().contains(Vec3::ZERO));
    }

    #[test]
    fn boundary_angle() {
        let c = unit_cone();
        // 60° off axis, inside.
        let at_60 = Vec3::new(0.5, 3f64.sqrt() / 2.0, 0.0) * 10.0;
        assert!(c.contains(at_60));
        // 61° off axis, outside.
        let a = 61f64.to_radians();
        let at_61 = Vec3::new(a.cos(), a.sin(), 0.0) * 10.0;
        assert!(!c.contains(at_61));
    }

    #[test]
    fn behind_is_outside() {
        assert!(!unit_cone().contains(Vec3::new(-1.0, 0.0, 0.0)));
    }

    #[test]
    fn deviation_zero_inside() {
        let c = unit_cone();
        assert_eq!(c.deviation(Vec3::new(50.0, 0.0, 0.0)), 0.0);
        assert_eq!(c.deviation(Vec3::ZERO), 0.0);
    }

    #[test]
    fn deviation_radial() {
        let c = unit_cone();
        let d = c.deviation(Vec3::new(150.0, 0.0, 0.0));
        assert!((d - 50.0).abs() < 1e-9);
    }

    #[test]
    fn deviation_angular_grows_with_angle() {
        let c = unit_cone();
        let a90 = c.deviation(Vec3::new(0.0, 50.0, 0.0));
        let a180 = c.deviation(Vec3::new(-50.0, 0.0, 0.0));
        assert!(a90 > 0.0);
        assert!(a180 > a90);
    }

    #[test]
    fn deviation_monotone_in_distance_behind() {
        let c = unit_cone();
        let near = c.deviation(Vec3::new(-10.0, 0.0, 0.0));
        let far = c.deviation(Vec3::new(-90.0, 0.0, 0.0));
        assert!(far > near);
    }

    #[test]
    fn zero_axis_falls_back() {
        let c = Cone::new(Vec3::ZERO, Vec3::ZERO, 1.0, 10.0);
        assert_eq!(c.axis(), Vec3::X);
    }

    #[test]
    fn accessors_and_display() {
        let c = unit_cone();
        assert_eq!(c.apex(), Vec3::ZERO);
        assert_eq!(c.radius(), 100.0);
        assert!((c.half_angle() - 60f64.to_radians()).abs() < 1e-12);
        assert!(format!("{c}").contains("cone"));
    }
}
