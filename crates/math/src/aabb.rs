//! Axis-aligned bounding boxes.

use std::fmt;

use crate::{Segment, Vec3};

/// An axis-aligned box, used for map geometry (walls, platforms) and
/// world bounds.
///
/// # Examples
///
/// ```
/// use watchmen_math::{Aabb, Vec3};
///
/// let b = Aabb::new(Vec3::ZERO, Vec3::splat(10.0));
/// assert!(b.contains(Vec3::splat(5.0)));
/// assert!(!b.contains(Vec3::splat(11.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    #[must_use]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// The corner with the smallest coordinates.
    #[must_use]
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// The corner with the largest coordinates.
    #[must_use]
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// The box center.
    #[must_use]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// The box dimensions.
    #[must_use]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Returns `true` if `p` is inside or on the boundary.
    #[must_use]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap (touching counts).
    #[must_use]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Clamps a point onto or into the box.
    #[must_use]
    pub fn clamp_point(&self, p: Vec3) -> Vec3 {
        p.max(self.min).min(self.max)
    }

    /// Returns the entry parameter `t ∈ [0, 1]` at which the segment first
    /// intersects the box, or `None` if it misses entirely.
    ///
    /// A segment starting inside the box reports `t = 0`.
    #[must_use]
    pub fn segment_intersection(&self, seg: &Segment) -> Option<f64> {
        let d = seg.end - seg.start;
        let mut t_min: f64 = 0.0;
        let mut t_max: f64 = 1.0;
        for axis in 0..3 {
            let (s, dv, lo, hi) = (seg.start[axis], d[axis], self.min[axis], self.max[axis]);
            if dv.abs() < crate::EPSILON {
                if s < lo || s > hi {
                    return None;
                }
            } else {
                let mut t1 = (lo - s) / dv;
                let mut t2 = (hi - s) / dv;
                if t1 > t2 {
                    std::mem::swap(&mut t1, &mut t2);
                }
                t_min = t_min.max(t1);
                t_max = t_max.min(t2);
                if t_min > t_max {
                    return None;
                }
            }
        }
        Some(t_min)
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(10.0))
    }

    #[test]
    fn corners_normalized() {
        let b = Aabb::new(Vec3::splat(10.0), Vec3::ZERO);
        assert_eq!(b.min(), Vec3::ZERO);
        assert_eq!(b.max(), Vec3::splat(10.0));
        assert_eq!(b.center(), Vec3::splat(5.0));
        assert_eq!(b.size(), Vec3::splat(10.0));
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(10.0)));
        assert!(!b.contains(Vec3::new(5.0, 5.0, -0.1)));
    }

    #[test]
    fn intersection() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(5.0), Vec3::splat(15.0));
        let c = Aabb::new(Vec3::splat(11.0), Vec3::splat(12.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn clamp_point_projects() {
        let b = unit_box();
        assert_eq!(b.clamp_point(Vec3::new(-5.0, 5.0, 20.0)), Vec3::new(0.0, 5.0, 10.0));
        assert_eq!(b.clamp_point(Vec3::splat(5.0)), Vec3::splat(5.0));
    }

    #[test]
    fn segment_hits_face() {
        let b = unit_box();
        let seg = Segment::new(Vec3::new(-5.0, 5.0, 5.0), Vec3::new(15.0, 5.0, 5.0));
        let t = b.segment_intersection(&seg).unwrap();
        assert!((t - 0.25).abs() < 1e-9);
    }

    #[test]
    fn segment_misses() {
        let b = unit_box();
        let seg = Segment::new(Vec3::new(-5.0, 20.0, 5.0), Vec3::new(15.0, 20.0, 5.0));
        assert!(b.segment_intersection(&seg).is_none());
    }

    #[test]
    fn segment_starting_inside() {
        let b = unit_box();
        let seg = Segment::new(Vec3::splat(5.0), Vec3::new(20.0, 5.0, 5.0));
        assert_eq!(b.segment_intersection(&seg), Some(0.0));
    }

    #[test]
    fn segment_parallel_outside_slab() {
        let b = unit_box();
        // Parallel to x-axis but outside the y slab: degenerate axis check.
        let seg = Segment::new(Vec3::new(2.0, -1.0, 5.0), Vec3::new(8.0, -1.0, 5.0));
        assert!(b.segment_intersection(&seg).is_none());
    }

    #[test]
    fn segment_short_of_box() {
        let b = unit_box();
        let seg = Segment::new(Vec3::new(-10.0, 5.0, 5.0), Vec3::new(-5.0, 5.0, 5.0));
        assert!(b.segment_intersection(&seg).is_none());
    }
}
