//! Running statistics, histograms and percentiles.
//!
//! Verification thresholds in the paper are calibrated from honest-player
//! behaviour: an action is acceptable when its deviation `a` satisfies
//! `a ≤ ā + σ_a` where `ā`/`σ_a` are the observed mean and standard
//! deviation. [`Running`] provides those online; [`Histogram`] backs the
//! experiment harness (Figure 7's PDF of update ages, Figure 4's stacked
//! bars).

use std::fmt;

/// Online mean / variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use watchmen_math::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.mean(), 5.0);
/// assert_eq!(r.std_dev(), 2.0); // population standard deviation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` with fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The paper's acceptance threshold `ā + k·σ_a`.
    #[must_use]
    pub fn tolerance(&self, k: f64) -> f64 {
        self.mean() + k * self.std_dev()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Running {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.4} sd={:.4}", self.n, self.mean(), self.std_dev())
    }
}

impl Extend<f64> for Running {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// A fixed-width histogram over `[lo, hi)` with an overflow bucket.
///
/// # Examples
///
/// ```
/// use watchmen_math::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(3.0);
/// h.push(100.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram: lo {lo} >= hi {hi}");
        assert!(buckets > 0, "histogram: zero buckets");
        Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = ((x - self.lo) / width) as usize;
            let i = i.min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Total number of samples including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Samples below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[start, end)` range of bucket `i`.
    #[must_use]
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// The fraction of all samples falling in bucket `i` (`0.0` when empty).
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.buckets[i] as f64 / total as f64
        }
    }

    /// Iterates `(bucket_start, fraction)` pairs — the PDF series plotted in
    /// Figure 7.
    pub fn pdf(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.buckets.len()).map(|i| (self.bucket_range(i).0, self.fraction(i)))
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample set, by linear interpolation.
///
/// Returns `None` for an empty slice. The input need not be sorted.
///
/// # Examples
///
/// ```
/// use watchmen_math::stats::percentile;
/// let data = vec![4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&data, 0.5), Some(2.5));
/// ```
#[must_use]
pub fn percentile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = crate::clamp(q, 0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    Some(if i + 1 < sorted.len() {
        sorted[i] * (1.0 - frac) + sorted[i + 1] * frac
    } else {
        sorted[i]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_basic() {
        let r: Running = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(r.count(), 4);
        assert_eq!(r.mean(), 2.5);
        assert!((r.variance() - 1.25).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 4.0);
    }

    #[test]
    fn running_empty() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn running_tolerance() {
        let r: Running = [0.0, 2.0].into_iter().collect();
        assert_eq!(r.mean(), 1.0);
        assert_eq!(r.std_dev(), 1.0);
        assert_eq!(r.tolerance(1.0), 2.0);
        assert_eq!(r.tolerance(2.0), 3.0);
    }

    #[test]
    fn running_merge_matches_sequential() {
        let mut a: Running = [1.0, 2.0, 3.0].into_iter().collect();
        let b: Running = [10.0, 20.0].into_iter().collect();
        let all: Running = [1.0, 2.0, 3.0, 10.0, 20.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 20.0);
    }

    #[test]
    fn running_merge_empty_cases() {
        let mut a = Running::new();
        let b: Running = [5.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.mean(), 5.0);
        let mut c: Running = [5.0].into_iter().collect();
        c.merge(&Running::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bucket_count(i), 1, "bucket {i}");
        }
        assert_eq!(h.bucket_range(3), (3.0, 4.0));
        assert_eq!(h.fraction(3), 0.1);
    }

    #[test]
    fn histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-1.0);
        h.push(1.0);
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_pdf_sums_to_fraction_in_range() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 9.0] {
            h.push(x);
        }
        let total: f64 = h.pdf().map(|(_, f)| f).sum();
        assert!((total - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn histogram_bad_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn percentile_interpolates() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.3), Some(7.0));
    }
}
