//! 3-D vector type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::EPSILON;

/// A 3-D vector of `f64` components.
///
/// Used throughout the workspace for positions, velocities and aim
/// directions. The game world convention is: `x`/`y` span the horizontal
/// plane, `z` is up.
///
/// # Examples
///
/// ```
/// use watchmen_math::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
/// assert_eq!(a.dot(b), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// East/west component.
    pub x: f64,
    /// North/south component.
    pub y: f64,
    /// Vertical component (up is positive).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along `x`.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along `y`.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along `z` (up).
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from components.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[must_use]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[must_use]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::length`]).
    #[must_use]
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance between two points.
    #[must_use]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Squared distance between two points.
    #[must_use]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).length_squared()
    }

    /// Returns the unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    #[must_use]
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        (len > EPSILON).then(|| self / len)
    }

    /// Returns the unit vector in the same direction, falling back to
    /// `fallback` for a (near-)zero vector.
    #[must_use]
    pub fn normalized_or(self, fallback: Vec3) -> Vec3 {
        self.normalized().unwrap_or(fallback)
    }

    /// Component-wise linear interpolation; `t = 0` yields `self`, `t = 1`
    /// yields `other`.
    #[must_use]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// The angle in radians between two vectors, in `[0, π]`.
    ///
    /// Returns `0.0` if either vector is (near-)zero.
    #[must_use]
    pub fn angle_between(self, other: Vec3) -> f64 {
        let denom = self.length() * other.length();
        if denom <= EPSILON {
            return 0.0;
        }
        crate::clamp(self.dot(other) / denom, -1.0, 1.0).acos()
    }

    /// Projects this vector onto the horizontal (`x`/`y`) plane.
    #[must_use]
    pub fn horizontal(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Horizontal (2-D) distance between two points, ignoring `z`.
    #[must_use]
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        self.horizontal().distance(other.horizontal())
    }

    /// Returns `true` if all components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Returns a copy with length clamped to at most `max_len`.
    ///
    /// Used by the physics substrate to enforce the game's maximum velocity.
    #[must_use]
    pub fn clamp_length(self, max_len: f64) -> Vec3 {
        debug_assert!(max_len >= 0.0);
        let len = self.length();
        if len > max_len && len > EPSILON {
            self * (max_len / len)
        } else {
            self
        }
    }

    /// Returns `true` if the two vectors differ by at most `tol` in every
    /// component.
    #[must_use]
    pub fn approx_eq(self, other: Vec3, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol
            && (self.y - other.y).abs() <= tol
            && (self.z - other.z).abs() <= tol
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes components as `0 → x`, `1 → y`, `2 → z`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |acc, v| acc + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::X;
        v -= Vec3::Y;
        v *= 3.0;
        v /= 1.5;
        assert!(v.approx_eq(Vec3::new(4.0, 0.0, 2.0), 1e-12));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn length_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
        assert_eq!(Vec3::ZERO.distance_squared(v), 25.0);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 0.0, 10.0);
        assert_eq!(v.normalized(), Some(Vec3::Z));
        assert_eq!(Vec3::ZERO.normalized(), None);
        assert_eq!(Vec3::ZERO.normalized_or(Vec3::X), Vec3::X);
    }

    #[test]
    fn angle_between() {
        let a = Vec3::X.angle_between(Vec3::Y);
        assert!((a - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Vec3::X.angle_between(Vec3::ZERO), 0.0);
        let opposite = Vec3::X.angle_between(-Vec3::X);
        assert!((opposite - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn clamp_length_caps_speed() {
        let fast = Vec3::new(30.0, 40.0, 0.0);
        let capped = fast.clamp_length(10.0);
        assert!((capped.length() - 10.0).abs() < 1e-12);
        // Direction preserved.
        assert!(capped.normalized().unwrap().approx_eq(fast.normalized().unwrap(), 1e-12));
        // Short vectors untouched.
        assert_eq!(Vec3::X.clamp_length(10.0), Vec3::X);
    }

    #[test]
    fn horizontal_projection() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.horizontal(), Vec3::new(3.0, 4.0, 0.0));
        assert_eq!(Vec3::ZERO.horizontal_distance(v), 5.0);
    }

    #[test]
    fn conversions_and_index() {
        let v = Vec3::from((1.0, 2.0, 3.0));
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from(a), v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_and_minmax() {
        let total: Vec3 = [Vec3::X, Vec3::Y, Vec3::Z].into_iter().sum();
        assert_eq!(total, Vec3::splat(1.0));
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 1.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 1.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}
