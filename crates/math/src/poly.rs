//! Polyline trajectories and the *area between trajectories* metric.
//!
//! Dead-reckoning verification in the paper rates a guidance message by
//! comparing the trajectory it predicted against the trajectory the avatar
//! actually followed: "We use the area between the simulated and the actual
//! trajectory of the avatar as a metric of the deviation", and an update is
//! acceptable when `a ≤ ā + σ_a` over honest players.

use crate::{lerp, Vec3};

/// A polyline trajectory: an ordered list of sampled positions.
///
/// # Examples
///
/// ```
/// use watchmen_math::poly::Polyline;
/// use watchmen_math::Vec3;
///
/// let line = Polyline::from_points(vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
/// assert_eq!(line.length(), 10.0);
/// assert_eq!(line.sample(0.5), Vec3::new(5.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    points: Vec<Vec3>,
}

impl Polyline {
    /// Creates an empty polyline.
    #[must_use]
    pub fn new() -> Self {
        Polyline::default()
    }

    /// Creates a polyline from a list of points.
    #[must_use]
    pub fn from_points(points: Vec<Vec3>) -> Self {
        Polyline { points }
    }

    /// Appends a point.
    pub fn push(&mut self, p: Vec3) {
        self.points.push(p);
    }

    /// The sampled points.
    #[must_use]
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of sampled points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the polyline has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Samples the position at normalized arc-length parameter `u ∈ [0, 1]`.
    ///
    /// An empty polyline returns the origin; a single point returns that
    /// point. Parameters outside `[0, 1]` are clamped.
    #[must_use]
    pub fn sample(&self, u: f64) -> Vec3 {
        match self.points.len() {
            0 => Vec3::ZERO,
            1 => self.points[0],
            _ => {
                let total = self.length();
                if total <= crate::EPSILON {
                    return self.points[0];
                }
                let mut target = crate::clamp(u, 0.0, 1.0) * total;
                for w in self.points.windows(2) {
                    let seg_len = w[0].distance(w[1]);
                    if target <= seg_len {
                        let t = if seg_len > crate::EPSILON { target / seg_len } else { 0.0 };
                        return w[0].lerp(w[1], t);
                    }
                    target -= seg_len;
                }
                *self.points.last().expect("non-empty")
            }
        }
    }

    /// Samples the position at a *time* parameter `u ∈ [0, 1]`, interpreting
    /// the points as equally spaced in time rather than arc length.
    ///
    /// This matches how game trajectories are recorded (one sample per
    /// frame): frame `k` of `n` lives at `u = k / (n - 1)`.
    #[must_use]
    pub fn sample_by_time(&self, u: f64) -> Vec3 {
        match self.points.len() {
            0 => Vec3::ZERO,
            1 => self.points[0],
            n => {
                let t = crate::clamp(u, 0.0, 1.0) * (n - 1) as f64;
                let i = (t.floor() as usize).min(n - 2);
                let frac = t - i as f64;
                self.points[i].lerp(self.points[i + 1], frac)
            }
        }
    }
}

impl FromIterator<Vec3> for Polyline {
    fn from_iter<I: IntoIterator<Item = Vec3>>(iter: I) -> Self {
        Polyline { points: iter.into_iter().collect() }
    }
}

impl Extend<Vec3> for Polyline {
    fn extend<I: IntoIterator<Item = Vec3>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

/// The area between two trajectories, the paper's dead-reckoning deviation
/// metric.
///
/// Both trajectories are interpreted as time-parameterized (one sample per
/// frame) and the separation distance is trapezoid-integrated over `samples`
/// uniform time steps, scaled by the mean trajectory length. For two
/// straight, parallel trajectories of length `L` at distance `d` this is
/// exactly the geometric strip area `L·d`; for diverging trajectories it
/// grows with both divergence and duration, which is what the
/// `a ≤ ā + σ_a` acceptance test needs.
///
/// Degenerate cases: two empty/singleton trajectories give the (average
/// separation × 0 length) = 0 if they coincide, otherwise the mean
/// separation itself is returned so that discrepancies never vanish merely
/// because the avatar stood still.
///
/// # Examples
///
/// ```
/// use watchmen_math::poly::{area_between, Polyline};
/// use watchmen_math::Vec3;
///
/// let actual = Polyline::from_points(vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
/// let predicted = Polyline::from_points(vec![
///     Vec3::new(0.0, 2.0, 0.0),
///     Vec3::new(10.0, 2.0, 0.0),
/// ]);
/// let a = area_between(&actual, &predicted, 32);
/// assert!((a - 20.0).abs() < 1e-6); // 10 long × 2 apart
/// ```
#[must_use]
pub fn area_between(a: &Polyline, b: &Polyline, samples: usize) -> f64 {
    let samples = samples.max(2);
    let mut mean_sep = 0.0;
    for k in 0..samples {
        let u = k as f64 / (samples - 1) as f64;
        let d = a.sample_by_time(u).distance(b.sample_by_time(u));
        // Trapezoid weights: half at the ends.
        let w = if k == 0 || k == samples - 1 { 0.5 } else { 1.0 };
        mean_sep += d * w;
    }
    mean_sep /= (samples - 1) as f64;
    let len = f64::midpoint(a.length(), b.length());
    if len <= crate::EPSILON {
        mean_sep
    } else {
        mean_sep * len
    }
}

/// Maximum pointwise separation between two time-parameterized trajectories.
///
/// A cheaper companion to [`area_between`] used for quick sanity checks.
#[must_use]
pub fn max_separation(a: &Polyline, b: &Polyline, samples: usize) -> f64 {
    let samples = samples.max(2);
    (0..samples)
        .map(|k| {
            let u = k as f64 / (samples - 1) as f64;
            a.sample_by_time(u).distance(b.sample_by_time(u))
        })
        .fold(0.0, f64::max)
}

/// Builds the straight-line trajectory predicted by dead reckoning: start at
/// `pos`, move with constant `velocity` for `frames` steps of `dt` seconds.
///
/// # Examples
///
/// ```
/// use watchmen_math::poly::dead_reckon_path;
/// use watchmen_math::Vec3;
///
/// let path = dead_reckon_path(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 4, 0.05);
/// assert_eq!(path.len(), 5);
/// assert_eq!(*path.points().last().unwrap(), Vec3::new(0.2, 0.0, 0.0));
/// ```
#[must_use]
pub fn dead_reckon_path(pos: Vec3, velocity: Vec3, frames: usize, dt: f64) -> Polyline {
    (0..=frames).map(|k| pos + velocity * (k as f64 * dt)).collect()
}

/// Resamples a polyline to exactly `n` points, equally spaced in time.
#[must_use]
pub fn resample(line: &Polyline, n: usize) -> Polyline {
    match n {
        0 => Polyline::new(),
        1 => Polyline::from_points(vec![line.sample_by_time(0.0)]),
        _ => {
            (0..n).map(|k| line.sample_by_time(lerp(0.0, 1.0, k as f64 / (n - 1) as f64))).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(y: f64) -> Polyline {
        Polyline::from_points(vec![
            Vec3::new(0.0, y, 0.0),
            Vec3::new(5.0, y, 0.0),
            Vec3::new(10.0, y, 0.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(straight(0.0).length(), 10.0);
        assert_eq!(Polyline::new().length(), 0.0);
    }

    #[test]
    fn sample_arc_length() {
        let line = straight(0.0);
        assert_eq!(line.sample(0.0), Vec3::ZERO);
        assert_eq!(line.sample(1.0), Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(line.sample(0.25), Vec3::new(2.5, 0.0, 0.0));
        // Clamped outside [0,1].
        assert_eq!(line.sample(2.0), Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(line.sample(-1.0), Vec3::ZERO);
    }

    #[test]
    fn sample_degenerate() {
        assert_eq!(Polyline::new().sample(0.5), Vec3::ZERO);
        let single = Polyline::from_points(vec![Vec3::X]);
        assert_eq!(single.sample(0.5), Vec3::X);
        assert_eq!(single.sample_by_time(0.9), Vec3::X);
        let stationary = Polyline::from_points(vec![Vec3::X, Vec3::X]);
        assert_eq!(stationary.sample(0.7), Vec3::X);
    }

    #[test]
    fn sample_by_time_uses_indices() {
        // Uneven segment lengths: time sampling is index-based.
        let line = Polyline::from_points(vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(100.0, 0.0, 0.0),
        ]);
        assert_eq!(line.sample_by_time(0.5), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn area_between_parallel_strips() {
        let a = area_between(&straight(0.0), &straight(3.0), 64);
        assert!((a - 30.0).abs() < 1e-6, "{a}");
    }

    #[test]
    fn area_between_identical_is_zero() {
        assert_eq!(area_between(&straight(1.0), &straight(1.0), 16), 0.0);
    }

    #[test]
    fn area_between_symmetric() {
        let p = straight(0.0);
        let q = Polyline::from_points(vec![Vec3::ZERO, Vec3::new(8.0, 4.0, 0.0)]);
        let ab = area_between(&p, &q, 32);
        let ba = area_between(&q, &p, 32);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn area_between_stationary_still_reports_separation() {
        let a = Polyline::from_points(vec![Vec3::ZERO, Vec3::ZERO]);
        let b = Polyline::from_points(vec![Vec3::new(7.0, 0.0, 0.0), Vec3::new(7.0, 0.0, 0.0)]);
        assert!((area_between(&a, &b, 8) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn max_separation_detects_divergence() {
        let a = straight(0.0);
        let diverging = Polyline::from_points(vec![Vec3::ZERO, Vec3::new(10.0, 6.0, 0.0)]);
        let m = max_separation(&a, &diverging, 32);
        assert!((m - 6.0).abs() < 1e-9);
    }

    #[test]
    fn dead_reckon_path_constant_velocity() {
        let p = dead_reckon_path(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 10, 0.05);
        assert_eq!(p.len(), 11);
        assert!(p.points()[5].approx_eq(Vec3::new(0.5, 0.0, 0.0), 1e-12));
    }

    #[test]
    fn resample_preserves_endpoints() {
        let line = straight(0.0);
        let r = resample(&line, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r.points()[0], Vec3::ZERO);
        assert_eq!(*r.points().last().unwrap(), Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(resample(&line, 0).len(), 0);
        assert_eq!(resample(&line, 1).len(), 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut line: Polyline = [Vec3::ZERO, Vec3::X].into_iter().collect();
        line.extend([Vec3::Y]);
        assert_eq!(line.len(), 3);
        assert!(!line.is_empty());
    }
}
