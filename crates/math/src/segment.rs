//! Line segments and rays with closest-point queries.

use std::fmt;

use crate::{Vec3, EPSILON};

/// A line segment between two points.
///
/// Used for projectile paths (hit/kill verification measures "the distance
/// between the position of the rocket and that of the target") and for
/// occlusion rays.
///
/// # Examples
///
/// ```
/// use watchmen_math::{Segment, Vec3};
///
/// let s = Segment::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0));
/// assert_eq!(s.distance_to_point(Vec3::new(5.0, 3.0, 0.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub start: Vec3,
    /// End point.
    pub end: Vec3,
}

impl Segment {
    /// Creates a segment from start to end.
    #[must_use]
    pub const fn new(start: Vec3, end: Vec3) -> Self {
        Segment { start, end }
    }

    /// The segment's length.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    /// The direction from start to end, or `None` for a degenerate segment.
    #[must_use]
    pub fn direction(&self) -> Option<Vec3> {
        (self.end - self.start).normalized()
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[must_use]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.start.lerp(self.end, t)
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    #[must_use]
    pub fn closest_parameter(&self, p: Vec3) -> f64 {
        let d = self.end - self.start;
        let len2 = d.length_squared();
        if len2 <= EPSILON * EPSILON {
            return 0.0;
        }
        crate::clamp((p - self.start).dot(d) / len2, 0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[must_use]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        self.point_at(self.closest_parameter(p))
    }

    /// The distance from `p` to the segment.
    #[must_use]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.start, self.end)
    }
}

/// A half-infinite ray from an origin along a direction.
///
/// # Examples
///
/// ```
/// use watchmen_math::{Ray, Vec3};
///
/// let r = Ray::new(Vec3::ZERO, Vec3::X);
/// assert_eq!(r.point_at(3.0), Vec3::new(3.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Normalized ray direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray; the direction is normalized (zero falls back to `+x`).
    #[must_use]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray { origin, dir: dir.normalized_or(Vec3::X) }
    }

    /// The point at distance `t ≥ 0` along the ray.
    #[must_use]
    pub fn point_at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Distance along the ray of the closest approach to `p` (clamped ≥ 0).
    #[must_use]
    pub fn closest_parameter(&self, p: Vec3) -> f64 {
        (p - self.origin).dot(self.dir).max(0.0)
    }

    /// Distance from `p` to the ray.
    #[must_use]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.point_at(self.closest_parameter(p)).distance(p)
    }

    /// The distance `t` at which the ray enters a sphere of radius `r`
    /// centered at `c`, or `None` if it misses.
    ///
    /// A ray starting inside the sphere reports `t = 0`.
    #[must_use]
    pub fn sphere_intersection(&self, c: Vec3, r: f64) -> Option<f64> {
        let oc = self.origin - c;
        if oc.length_squared() <= r * r {
            return Some(0.0);
        }
        let b = oc.dot(self.dir);
        let disc = b * b - (oc.length_squared() - r * r);
        if disc < 0.0 {
            return None;
        }
        let t = -b - disc.sqrt();
        (t >= 0.0).then_some(t)
    }
}

impl fmt::Display for Ray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} toward {}", self.origin, self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_closest_point_interior() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(s.closest_point(Vec3::new(4.0, 2.0, 0.0)), Vec3::new(4.0, 0.0, 0.0));
        assert_eq!(s.closest_parameter(Vec3::new(4.0, 2.0, 0.0)), 0.4);
    }

    #[test]
    fn segment_closest_point_clamps_to_endpoints() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(s.closest_point(Vec3::new(-5.0, 1.0, 0.0)), Vec3::ZERO);
        assert_eq!(s.closest_point(Vec3::new(15.0, 1.0, 0.0)), Vec3::new(10.0, 0.0, 0.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Vec3::X, Vec3::X);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.direction(), None);
        assert_eq!(s.closest_point(Vec3::ZERO), Vec3::X);
        assert_eq!(s.distance_to_point(Vec3::ZERO), 1.0);
    }

    #[test]
    fn ray_distance() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert_eq!(r.distance_to_point(Vec3::new(5.0, 3.0, 0.0)), 3.0);
        // Behind the origin: closest point is the origin itself.
        assert_eq!(r.distance_to_point(Vec3::new(-4.0, 3.0, 0.0)), 5.0);
    }

    #[test]
    fn ray_sphere_hit_miss() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let t = r.sphere_intersection(Vec3::new(10.0, 0.0, 0.0), 2.0).unwrap();
        assert!((t - 8.0).abs() < 1e-9);
        assert!(r.sphere_intersection(Vec3::new(10.0, 5.0, 0.0), 2.0).is_none());
        // Behind the ray.
        assert!(r.sphere_intersection(Vec3::new(-10.0, 0.0, 0.0), 2.0).is_none());
        // Starting inside.
        assert_eq!(r.sphere_intersection(Vec3::new(0.5, 0.0, 0.0), 2.0), Some(0.0));
    }

    #[test]
    fn display_nonempty() {
        let s = Segment::new(Vec3::ZERO, Vec3::X);
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(!format!("{s}").is_empty());
        assert!(!format!("{r}").is_empty());
    }
}
