//! Coordinated-adversary campaign runner: collusion, Sybil flood and
//! eclipse, soaked across seeds on the work-stealing pool and graded
//! against injected ground truth.
//!
//! ```sh
//! cargo run --release --example campaign_run
//! ```
//!
//! Defaults to 8 seeds per campaign kind (24 campaigns). Override with
//! `WATCHMEN_CAMPAIGN`, e.g.:
//!
//! ```sh
//! WATCHMEN_CAMPAIGN="runs=16,seed=2013,workers=4" \
//!     cargo run --release --example campaign_run
//! ```
//!
//! Knobs: `runs` (seeds per kind), `seed`, `workers`, `max_local`.
//!
//! Prints one machine-parseable `campaign <name>:` SLO line per kind
//! (ci.sh gates on all three), plus per-run lines with
//! `WATCHMEN_CAMPAIGN_LINES=1`. With `WATCHMEN_BENCH_OUT=<dir>` set the
//! run also writes `BENCH_campaign.json` with per-kind adversary /
//! detection / false-verdict counts and time-to-detect percentiles.

use std::time::Instant;

use watchmen::bench::BenchRecord;
use watchmen::fleet::{run_campaign_soak, CampaignSoakConfig};
use watchmen::sim::campaign::CampaignKind;

fn main() {
    let config = CampaignSoakConfig::from_env().unwrap_or_default();
    println!(
        "campaign soak: {} kinds x {} seeds on {} workers (base seed {})…",
        CampaignKind::ALL.len(),
        config.runs_per_kind,
        config.workers,
        config.seed,
    );

    let started = Instant::now();
    let result = run_campaign_soak(&config);
    let elapsed = started.elapsed().as_secs_f64();

    for msg in &result.panics {
        println!("campaign panicked: {msg}");
    }
    if std::env::var("WATCHMEN_CAMPAIGN_LINES").is_ok_and(|v| !v.trim().is_empty()) {
        for outcome in &result.outcomes {
            println!("seed {}: {}", outcome.seed, outcome.summary_line());
        }
        println!();
    }

    // The three machine-parseable per-kind SLO lines ci.sh gates on.
    print!("{}", result.summary_lines());
    println!(
        "campaign soak: {} campaigns in {elapsed:.2}s, ok={}",
        result.outcomes.len(),
        result.ok()
    );

    let mut record = BenchRecord::new("campaign")
        .with_u64("runs_per_kind", config.runs_per_kind)
        .with_u64("workers", config.workers as u64)
        .with_u64("campaigns", result.outcomes.len() as u64)
        .with_u64("panics", result.panics.len() as u64)
        .with_u64("ok", u64::from(result.ok()))
        .with_f64("elapsed_sec", elapsed);
    for kind in CampaignKind::ALL {
        let q = result.quality_for(kind);
        let name = kind.name().replace('-', "_");
        let ttd = |p: f64| q.ttd_percentile(p).map_or(f64::NAN, |v| v as f64);
        record = record
            .with_u64(&format!("{name}_adversaries"), q.injected)
            .with_u64(&format!("{name}_detected"), q.detected)
            .with_u64(&format!("{name}_false_verdicts"), q.false_verdicts)
            .with_f64(&format!("{name}_ttd_p50_frames"), ttd(50.0))
            .with_f64(&format!("{name}_ttd_p99_frames"), ttd(99.0))
            .with_u64(&format!("{name}_ttd_budget_frames"), kind.ttd_budget_frames());
    }
    match record.save() {
        Ok(Some(path)) => println!("wrote bench record to {}", path.display()),
        Ok(None) => {
            println!("(set WATCHMEN_BENCH_OUT=<dir> to record BENCH_campaign.json)");
        }
        Err(e) => {
            eprintln!("failed to write bench record {}: {e}", record.file_name());
            std::process::exit(1);
        }
    }

    if !result.ok() {
        eprintln!("campaign SLO violated");
        std::process::exit(1);
    }
}
