//! A live Watchmen deathmatch across real OS processes.
//!
//! The parent process spawns one child process per player; each child
//! binds a `LiveTransport` (nonblocking batched UDP) on loopback, wraps
//! the identical sans-io `ProtocolCore` the simnet and fleet drivers
//! run, and plays a recorded deathmatch in real time — with one injected
//! speed-hacker whose proxy (a *different OS process*) must flag it.
//!
//! ```sh
//! cargo run --release --example live_cluster [players] [frames]
//! ```
//!
//! Defaults: 6 players, 240 frames. Knobs:
//!
//! * `WATCHMEN_LIVE_SEED` — workload/key/schedule seed (default 2013)
//! * `WATCHMEN_LIVE_PACE_MS` — real milliseconds per protocol frame
//!   (default 10; the protocol's own constants stay in frames, so pacing
//!   only scales wall clock)
//! * `WATCHMEN_LIVE_CHEATER` — player index scripted to speed-hack
//!   (default 2)
//!
//! The parent prints one machine-parseable line that ci.sh gates on:
//!
//! ```text
//! live summary: players=6 frames=240 cheater=2 severe=38 false_verdicts=0 \
//!   detected=1 completed=6 heartbeats=66 malformed=0 truncated=0
//! ```
//!
//! Rendezvous protocol (stdin/stdout lines, parent ↔ child):
//! child prints `ADDR <socketaddr>`; parent gathers all addresses and
//! writes `PEERS <addr0> <addr1> …`; child heartbeats until it has heard
//! every peer, prints `UP`; parent writes `GO` to everyone at once; the
//! match runs; child prints `RESULT k=v …` and exits.
//!
//! Every rendezvous step runs against a deadline: a child that crashes
//! (or wedges) fails the run immediately with a per-node diagnostic —
//! including its exit status — instead of hanging the parent on a pipe
//! read forever. `WATCHMEN_LIVE_DIE=<index>` makes that node exit right
//! after `ADDR` (a fault hook for exercising the failure path by hand).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use watchmen::core::node::{NodeEvent, WatchmenNode};
use watchmen::core::sans_io::ProtocolCore;
use watchmen::core::WatchmenConfig;
use watchmen::crypto::schnorr::Keypair;
use watchmen::game::PlayerId;
use watchmen::net::live::LiveTransport;
use watchmen::sim::workload::match_workload;
use watchmen::world::PhysicsConfig;

/// Extra frames after the playable match: one proxy epoch, enough for
/// the final epoch summaries and their verdicts to land.
const DRAIN_FRAMES: u64 = 40;

/// How far the scripted cheater teleports sideways, in world units —
/// the same magnitude every soak gate in this repo scripts.
const CHEAT_OFFSET: f64 = 30.0;

struct Knobs {
    players: usize,
    frames: u64,
    seed: u64,
    cheater: u32,
    pace_ms: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn knobs_from_env(players: usize, frames: u64) -> Knobs {
    Knobs {
        players,
        frames,
        seed: env_u64("WATCHMEN_LIVE_SEED", 2013),
        cheater: env_u64("WATCHMEN_LIVE_CHEATER", 2) as u32,
        pace_ms: env_u64("WATCHMEN_LIVE_PACE_MS", 10),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("__node") {
        // Child mode: `__node <index> <players> <frames>`.
        let index: usize = args[1].parse().expect("child index");
        let players: usize = args[2].parse().expect("child players");
        let frames: u64 = args[3].parse().expect("child frames");
        run_node(index, knobs_from_env(players, frames));
        return;
    }

    let players: usize = match args.first() {
        None => 6,
        Some(a) => a.parse().unwrap_or_else(|_| usage_error(&format!("bad players {a:?}"))),
    };
    let frames: u64 = match args.get(1) {
        None => 240,
        Some(a) => a.parse().unwrap_or_else(|_| usage_error(&format!("bad frames {a:?}"))),
    };
    if args.len() > 2 {
        usage_error(&format!("expected at most 2 arguments, got {}", args.len()));
    }
    if players < 3 {
        usage_error("players must be >= 3 (a cheater needs an honest proxy and witnesses)");
    }
    let knobs = knobs_from_env(players, frames);
    if knobs.cheater as usize >= players {
        usage_error("WATCHMEN_LIVE_CHEATER must be a player index");
    }
    run_parent(&knobs);
}

fn usage_error(reason: &str) -> ! {
    eprintln!("error: {reason}");
    eprintln!("usage: live_cluster [players] [frames]   (defaults: 6 players, 240 frames)");
    std::process::exit(2);
}

/// One spawned node process plus the channel its dedicated reader
/// thread feeds stdout lines into. The thread (not the parent) blocks
/// on the pipe, so the parent can put a deadline on every line and
/// name the node that died instead of hanging forever.
struct Node {
    child: Child,
    lines: mpsc::Receiver<String>,
}

impl Node {
    /// The next stdout line, or a diagnostic when the node crashed
    /// (channel disconnected — the reader thread saw EOF) or wedged
    /// past the deadline.
    fn next_line(&mut self, index: usize, what: &str, deadline: Instant) -> Result<String, String> {
        let wait = deadline.saturating_duration_since(Instant::now());
        match self.lines.recv_timeout(wait) {
            Ok(line) => Ok(line),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(format!("node {index}: no {what} line within {:.1}s", wait.as_secs_f64()))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                let status = match self.child.try_wait() {
                    Ok(Some(status)) => format!("exited with {status}"),
                    Ok(None) => "closed stdout but is still running".to_owned(),
                    Err(e) => format!("is unwaitable: {e}"),
                };
                Err(format!("node {index}: {status} before sending {what}"))
            }
        }
    }

    /// Writes a rendezvous line to the node's stdin, diagnosing a
    /// crashed node (broken pipe) instead of panicking.
    fn send(&mut self, index: usize, line: &str) -> Result<(), String> {
        self.child
            .stdin
            .as_mut()
            .expect("child stdin piped")
            .write_all(line.as_bytes())
            .map_err(|e| format!("node {index}: stdin write failed ({e}) — did it crash?"))
    }
}

fn spawn_reader(stdout: ChildStdout) -> mpsc::Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

/// Spawns the child fleet, runs the rendezvous, aggregates the results
/// and prints the `live summary:` gate line.
fn run_parent(knobs: &Knobs) {
    let exe = std::env::current_exe().expect("own executable path");
    println!(
        "spawning {} node processes on loopback ({} frames + {DRAIN_FRAMES} drain, \
         {}ms/frame, p{} speed-hacks)…",
        knobs.players, knobs.frames, knobs.pace_ms, knobs.cheater
    );

    let mut children: Vec<Node> = (0..knobs.players)
        .map(|i| {
            let mut child = Command::new(&exe)
                .arg("__node")
                .arg(i.to_string())
                .arg(knobs.players.to_string())
                .arg(knobs.frames.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn node process");
            let lines = spawn_reader(child.stdout.take().expect("child stdout"));
            Node { child, lines }
        })
        .collect();

    // Rendezvous 1: collect every child's ephemeral address. Binding a
    // loopback socket is fast; 10s is generous even under load.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut addrs: Vec<String> = Vec::with_capacity(knobs.players);
    let mut abort: Option<String> = None;
    for (i, node) in children.iter_mut().enumerate() {
        match node.next_line(i, "ADDR", deadline) {
            Ok(line) => match line.strip_prefix("ADDR ") {
                Some(addr) => addrs.push(addr.to_owned()),
                None => {
                    abort = Some(format!("node {i}: expected ADDR, got {line:?}"));
                    break;
                }
            },
            Err(reason) => {
                abort = Some(reason);
                break;
            }
        }
    }
    if let Some(reason) = abort {
        fail(&mut children, &reason);
    }

    // Rendezvous 2: everyone learns everyone, then confirms liveness.
    // Children give up after 10s themselves; the parent allows a little
    // extra so the child's own diagnostic wins when peers are down.
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    let deadline = Instant::now() + Duration::from_secs(15);
    for (i, node) in children.iter_mut().enumerate() {
        if let Err(reason) = node.send(i, &peers_line) {
            abort = Some(reason);
            break;
        }
    }
    for (i, node) in children.iter_mut().enumerate() {
        if abort.is_some() {
            break;
        }
        match node.next_line(i, "UP", deadline) {
            Ok(line) if line == "UP" => {}
            Ok(line) => abort = Some(format!("node {i}: expected UP, got {line:?}")),
            Err(reason) => abort = Some(reason),
        }
    }
    if let Some(reason) = abort {
        fail(&mut children, &reason);
    }

    // Rendezvous 3: start everyone as close to simultaneously as N pipe
    // writes allow.
    for (i, node) in children.iter_mut().enumerate() {
        if let Err(reason) = node.send(i, "GO\n") {
            abort = Some(reason);
            break;
        }
    }
    if let Some(reason) = abort {
        fail(&mut children, &reason);
    }
    let started = Instant::now();

    // Collect results. The match length is known exactly, so a node
    // that overruns its own runtime by 30s is wedged, not slow.
    let match_time = Duration::from_millis(knobs.pace_ms * (knobs.frames + DRAIN_FRAMES));
    let deadline = started + match_time + Duration::from_secs(30);
    let (mut severe, mut false_verdicts, mut heartbeats) = (0u64, 0u64, 0u64);
    let (mut malformed, mut truncated, mut queue_dropped) = (0u64, 0u64, 0u64);
    let mut completed = 0usize;
    for (i, node) in children.iter_mut().enumerate() {
        let line = match node.next_line(i, "RESULT", deadline) {
            Ok(line) => line,
            Err(reason) => {
                eprintln!("{reason}");
                let _ = node.child.kill();
                continue;
            }
        };
        let ok = node.child.wait().map(|s| s.success()).unwrap_or(false);
        let Some(kv) = line.strip_prefix("RESULT ") else {
            eprintln!("node {i}: expected RESULT, got {line:?}");
            continue;
        };
        if !ok {
            eprintln!("node {i}: nonzero exit");
            continue;
        }
        let get = |key: &str| -> u64 {
            kv.split_whitespace()
                .find_map(|pair| pair.strip_prefix(&format!("{key}=")))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        severe += get("severe");
        false_verdicts += get("false");
        heartbeats += get("heartbeats");
        malformed += get("malformed");
        truncated += get("truncated");
        queue_dropped += get("qdrop");
        completed += 1;
    }

    let detected = severe > 0;
    println!(
        "match wall clock: {:.2}s across {} processes (queue_dropped={queue_dropped})",
        started.elapsed().as_secs_f64(),
        knobs.players
    );
    println!(
        "live summary: players={} frames={} cheater={} severe={severe} \
         false_verdicts={false_verdicts} detected={} completed={completed} \
         heartbeats={heartbeats} malformed={malformed} truncated={truncated}",
        knobs.players,
        knobs.frames,
        knobs.cheater,
        u64::from(detected),
    );
    if completed != knobs.players || false_verdicts > 0 || !detected {
        eprintln!("live cluster FAILED");
        std::process::exit(1);
    }
}

fn fail(children: &mut [Node], reason: &str) -> ! {
    for node in children.iter_mut() {
        let _ = node.child.kill();
        let _ = node.child.wait();
    }
    eprintln!("live cluster aborted: {reason}");
    std::process::exit(1);
}

/// One player process: bind, rendezvous, then drive the sans-io core
/// over real UDP at a fixed frame cadence.
fn run_node(index: usize, knobs: Knobs) {
    let stdout = std::io::stdout();
    let stdin = std::io::stdin();

    let mut transport =
        LiveTransport::bind(index as u32, "127.0.0.1:0").expect("bind loopback socket");
    {
        let mut out = stdout.lock();
        writeln!(out, "ADDR {}", transport.local_addr().expect("local addr")).unwrap();
        out.flush().unwrap();
    }
    if env_u64("WATCHMEN_LIVE_DIE", u64::MAX) == index as u64 {
        // Scripted crash for exercising the parent's rendezvous
        // deadline: die right after ADDR, before ever heartbeating.
        eprintln!("node {index}: WATCHMEN_LIVE_DIE — crashing now");
        std::process::exit(7);
    }

    // Learn the full address book from the parent.
    let mut peers_line = String::new();
    stdin.lock().read_line(&mut peers_line).expect("PEERS line");
    let addrs: Vec<&str> =
        peers_line.trim().strip_prefix("PEERS ").expect("PEERS prefix").split(' ').collect();
    assert_eq!(addrs.len(), knobs.players, "address book covers every player");
    for (id, addr) in addrs.iter().enumerate() {
        if id != index {
            transport.register_peer(id as u32, addr.parse().expect("peer addr"));
        }
    }

    // Confirm mutual reachability: heartbeat until every peer was heard.
    let deadline = Instant::now() + Duration::from_secs(10);
    while transport.live_peers(u64::MAX) < knobs.players - 1 {
        assert!(Instant::now() < deadline, "node {index}: peers never came up");
        transport.beat().expect("heartbeat");
        transport.pump().expect("pump during rendezvous");
        std::thread::sleep(Duration::from_millis(2));
    }
    {
        let mut out = stdout.lock();
        writeln!(out, "UP").unwrap();
        out.flush().unwrap();
    }
    let mut go_line = String::new();
    stdin.lock().read_line(&mut go_line).expect("GO line");
    assert_eq!(go_line.trim(), "GO");

    // Everyone rebuilds the identical deterministic world from the seed:
    // same workload trace, same keys, same proxy schedule.
    let workload = match_workload(knobs.players, knobs.seed, knobs.frames);
    let keys: Vec<Keypair> =
        (0..knobs.players).map(|i| Keypair::generate(knobs.seed ^ i as u64)).collect();
    let directory: Vec<_> = keys.iter().map(Keypair::public).collect();
    let mut core = ProtocolCore::new(WatchmenNode::new(
        PlayerId(index as u32),
        keys[index].clone(),
        directory,
        knobs.seed,
        WatchmenConfig::default(),
        workload.map.clone(),
        PhysicsConfig::default(),
    ));

    let (mut severe, mut false_verdicts) = (0u64, 0u64);
    let tally = |events: &[NodeEvent], severe: &mut u64, false_verdicts: &mut u64| {
        for e in events {
            if let NodeEvent::Suspicion { subject, rating, .. } = e {
                if rating.score >= 6 {
                    if subject.0 == knobs.cheater {
                        *severe += 1;
                    } else {
                        *false_verdicts += 1;
                    }
                }
            }
        }
    };

    let pace = Duration::from_millis(knobs.pace_ms);
    let start = Instant::now();
    let total = knobs.frames + DRAIN_FRAMES;
    for f in 0..total {
        // Deliver everything the wire brought since the last tick…
        for (sender, bytes) in transport.pump().expect("pump") {
            let out = core.datagram(f, PlayerId(sender), &bytes);
            tally(&out.events, &mut severe, &mut false_verdicts);
            for o in out.datagrams {
                transport.queue(o.to.0, o.bytes);
            }
        }
        // …then tick. During the drain the avatar holds its final
        // recorded state (standing still is legal), keeping the proxy
        // streams alive while late verdicts land.
        let mut state =
            workload.trace.frames[(f as usize).min(knobs.frames as usize - 1)].states[index];
        if index as u32 == knobs.cheater && f > 0 && f % 4 == 0 && f < knobs.frames {
            state.position.x += CHEAT_OFFSET;
        }
        let out = core.tick(f, &state);
        tally(&out.events, &mut severe, &mut false_verdicts);
        for o in out.datagrams {
            transport.queue(o.to.0, o.bytes);
        }
        transport.pump().expect("flush");

        // Absolute deadlines: sleep jitter must not accumulate into
        // cross-process frame skew.
        let next = start + pace * (f as u32 + 1);
        if let Some(wait) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
    }

    let stats = transport.stats();
    let mut out = stdout.lock();
    writeln!(
        out,
        "RESULT node={index} severe={severe} false={false_verdicts} frames={total} \
         heartbeats={} malformed={} truncated={} qdrop={} unroutable={}",
        stats.heartbeats_received,
        stats.malformed,
        stats.truncated,
        stats.queue_dropped,
        stats.unroutable_dropped,
    )
    .unwrap();
    out.flush().unwrap();
}
