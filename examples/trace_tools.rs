//! Trace tooling: record a deathmatch, persist it to disk in the compact
//! binary format, reload it, and analyze it — the workflow of the paper's
//! tracing module + replay engine ("a tracing module … records in a trace
//! file all important game information").
//!
//! ```sh
//! cargo run --release --example trace_tools [players] [frames] [path]
//! ```

use watchmen::game::heatmap::Heatmap;
use watchmen::game::replay::Replay;
use watchmen::game::trace::GameTrace;
use watchmen::game::{GameConfig, GameEvent};
use watchmen::world::maps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1).inspect(|a| {
        if a.parse::<u64>().is_err() && !a.contains('/') && !a.contains('.') {
            eprintln!("warning: ignoring unparseable argument {a:?}, using the default");
        }
    });
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let frames: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1200);
    let path = args.next().unwrap_or_else(|| {
        std::env::temp_dir().join("watchmen-demo.trace").to_string_lossy().into_owned()
    });

    // Record.
    let map = maps::q3dm17_like();
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    println!("recording {players}-player, {frames}-frame deathmatch…");
    let trace = GameTrace::record(config, players, 1337, frames);

    // Persist.
    let bytes = trace.to_bytes();
    std::fs::write(&path, &bytes)?;
    println!(
        "wrote {path}: {} bytes ({:.1} bytes/player/frame)",
        bytes.len(),
        bytes.len() as f64 / (players as f64 * frames as f64)
    );

    // Reload and verify integrity.
    let restored = GameTrace::from_bytes(&std::fs::read(&path)?)?;
    assert_eq!(restored, trace, "trace roundtrip mismatch");
    println!("reloaded and verified byte-exact roundtrip");

    // Analyze: replay for interaction stats, heatmap for presence.
    let mut replay = Replay::new(&restored);
    let (mut kills, mut shots, mut pickups) = (0u64, 0u64, 0u64);
    while replay.advance().is_some() {
        for e in replay.current_events() {
            match e {
                GameEvent::Kill { .. } => kills += 1,
                GameEvent::Shot { .. } => shots += 1,
                GameEvent::Pickup { .. } => pickups += 1,
                _ => {}
            }
        }
    }
    println!("replay: {shots} shots, {kills} kills, {pickups} pickups");
    let heat = Heatmap::from_trace(&map, &restored);
    println!(
        "presence: {} samples, top-decile share {:.0}%, gini {:.2}",
        heat.total(),
        heat.top_share(0.1) * 100.0,
        heat.gini()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
