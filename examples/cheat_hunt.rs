//! End-to-end cheat hunting: inject cheaters into a deathmatch, run the
//! Watchmen verification suite from the proxies' vantage point, feed the
//! ratings into the reputation system, and watch the bans land.
//!
//! ```sh
//! cargo run --release --example cheat_hunt
//! ```

use watchmen::core::cheat::CheatInjector;
use watchmen::core::proxy::ProxySchedule;
use watchmen::core::rating::{CheatRating, Confidence};
use watchmen::core::reputation::{Reputation, ThresholdReputation};
use watchmen::core::verify::Verifier;
use watchmen::core::WatchmenConfig;
use watchmen::game::PlayerId;
use watchmen::sim::workload::standard_workload;
use watchmen::world::PhysicsConfig;

/// Players 0 and 1 cheat; everyone else is honest.
const CHEATERS: [u32; 2] = [0, 1];
/// Fraction of position updates the cheaters falsify.
const CHEAT_RATE: f64 = 0.10;

fn main() {
    let config = WatchmenConfig::default();
    let physics = PhysicsConfig::default();
    let workload = standard_workload(16, 7, 1200);
    let verifier = Verifier::new(config, physics);
    let schedule = ProxySchedule::new(7, 16, config.proxy_period);
    // Threshold calibration per the paper: "this threshold is set based on
    // the success and false positive rates of the detection system". The
    // position check's false-positive rate is ~0.1%, so requiring 95%
    // acceptable interactions never bans honest players while a 10%
    // speed-hacker fails ~10% of checks and drops below it.
    let mut reputation = ThresholdReputation::new(16, 0.95, 60);
    let mut injector = CheatInjector::new(99, CHEAT_RATE);

    println!(
        "16-player game, players p0 and p1 speed-hack on {:.0}% of frames\n",
        CHEAT_RATE * 100.0
    );

    let mut banned_at: Vec<Option<u64>> = vec![None; 16];
    for f in 1..workload.trace.len() {
        let prev_states = &workload.trace.frames[f - 1].states;
        let states = &workload.trace.frames[f].states;
        for p in 0..16u32 {
            let pid = PlayerId(p);
            if !states[p as usize].is_alive() || !prev_states[p as usize].is_alive() {
                continue;
            }
            let prev = prev_states[p as usize].position;
            let mut next = states[p as usize].position;
            // Cheaters falsify some of their position updates.
            let is_cheater = CHEATERS.contains(&p);
            if is_cheater && injector.roll() {
                next = injector.speed_hack(prev, next, physics.max_step(0.05));
            }
            // The proxy verifies the update stream it forwards. As in the
            // Figure 6 experiment, the flag threshold is calibrated so
            // honest players are almost never flagged (score ≥ 3 occurs on
            // ~0.1% of honest moves).
            let proxy = schedule.proxy_of(pid, f as u64);
            let score = verifier.check_position(prev, next, 1, &workload.map);
            let flagged = score >= 3;
            let rating = CheatRating::new(if flagged { 10 } else { 1 }, Confidence::Proxy, 0);
            reputation.report(proxy, pid, &rating);

            if reputation.is_banned(pid) && banned_at[p as usize].is_none() {
                banned_at[p as usize] = Some(f as u64);
                println!(
                    "frame {f:4}: {pid} BANNED (suspicion {:.2} after {} reports)",
                    reputation.suspicion(pid),
                    reputation.report_count(pid),
                );
            }
        }
    }

    println!("\nfinal standings:");
    for p in 0..16u32 {
        let pid = PlayerId(p);
        let tag = if CHEATERS.contains(&p) { "cheater" } else { "honest " };
        println!(
            "  {pid:>3} [{tag}] suspicion {:.3} banned: {}",
            reputation.suspicion(pid),
            match banned_at[p as usize] {
                Some(f) => format!("yes (frame {f})"),
                None => "no".to_owned(),
            }
        );
    }

    let cheaters_banned = CHEATERS.iter().all(|&c| banned_at[c as usize].is_some());
    let honest_banned =
        (0..16u32).filter(|p| !CHEATERS.contains(p)).any(|p| banned_at[p as usize].is_some());
    println!(
        "\nverdict: all cheaters banned: {cheaters_banned}; any honest player banned: {honest_banned}"
    );

    // WATCHMEN_TELEMETRY=prom|json dumps everything the run recorded.
    watchmen::telemetry::dump_from_env("cheat_hunt");
}
