//! The population-scale soak: a fleet of simultaneous Watchmen matches
//! on the shard-parallel orchestrator, with cheat injection in a known
//! subset, a live metrics endpoint, the verdict audit stream, and a
//! recorded bench trajectory.
//!
//! ```sh
//! cargo run --release --example fleet_soak
//! ```
//!
//! Defaults to 512 matches × 16 bots × 160 frames with a scripted
//! speed-hacker in every 8th match. Override any knob with
//! `WATCHMEN_FLEET`, e.g.:
//!
//! ```sh
//! WATCHMEN_FLEET="matches=256,players=16,frames=160,workers=4,cheat_every=8" \
//!     cargo run --release --example fleet_soak
//! ```
//!
//! Knobs: `matches`, `players`, `frames`, `workers`, `max_local` (per-
//! worker in-flight cap), `tick_quantum` (frames per scheduler quantum),
//! `seed`, `cheat_every` (0 = all honest), `observe` (0 disables the
//! observability plane), `audit` (1 retains per-match JSONL).
//!
//! Observability:
//!
//! * `WATCHMEN_METRICS_ADDR=127.0.0.1:9464` (port `0` for ephemeral)
//!   serves `/metrics`, `/metrics.json` and `/healthz` live while the
//!   fleet runs — the soak prints `metrics endpoint listening on <addr>`
//!   so scripts can find the bound port. `WATCHMEN_METRICS_HOLD_MS=<ms>`
//!   keeps the endpoint up that long after the summary, for scrapers
//!   that want a settled final snapshot.
//! * `WATCHMEN_AUDIT=<path>` writes the fleet's verdict audit stream as
//!   JSONL (forces `audit=1`); the stream is byte-identical across
//!   worker counts for a fixed seed.
//!
//! The final `fleet summary:` and `detection slo:` lines are
//! machine-parseable (ci.sh gates on both), and with
//! `WATCHMEN_BENCH_OUT=<dir>` set the run also writes `BENCH_fleet.json`
//! and `BENCH_detection.json` — the latter with time-to-detect p50/p99,
//! per-check TP/FP/FN, and the measured overhead of running the plane at
//! all (two extra mini-fleets, observe on vs. off).

use std::sync::Arc;
use std::time::Instant;

use watchmen::bench::BenchRecord;
use watchmen::fleet::{run_fleet, run_fleet_on, FleetConfig, FleetView, TTD_BUDGET_FRAMES};
use watchmen::telemetry::MetricsServer;

fn main() {
    let mut config = FleetConfig::from_env().unwrap_or_default();
    let audit_path =
        std::env::var("WATCHMEN_AUDIT").ok().map(|p| p.trim().to_owned()).filter(|p| !p.is_empty());
    if audit_path.is_some() {
        config.audit = true;
    }

    println!(
        "fleet soak: {} matches x {} bots x {} frames on {} workers \
         (quantum {} frames, cap {} in flight/worker, cheater in every {})…",
        config.matches,
        config.players,
        config.frames,
        config.workers,
        config.tick_quantum,
        config.max_local,
        if config.cheat_every > 0 {
            format!("{}th match", config.cheat_every)
        } else {
            "no match".to_owned()
        },
    );

    // The live plane: the view owns the shard registries the workers
    // record into; the endpoint (when enabled) re-merges them per
    // scrape, so `/metrics` is current mid-soak.
    let view = FleetView::for_config(&config);
    let server = {
        let scrape = view.clone();
        let help = view.clone();
        MetricsServer::from_env(
            Arc::new(move || scrape.snapshot()),
            Arc::new(move |name| help.help_for(name)),
        )
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind WATCHMEN_METRICS_ADDR: {e}");
            std::process::exit(1);
        }
    };
    if let Some(server) = &server {
        println!("metrics endpoint listening on {}", server.local_addr());
    }

    let started = Instant::now();
    let result = run_fleet_on(&config, &view);
    let elapsed = started.elapsed().as_secs_f64();

    // Per-worker scheduler view.
    println!("\nworkers:");
    for w in &result.workers {
        println!(
            "  shard {}: {} matches completed, {} quanta, {} ticks, {} steals, {} panics",
            w.shard, w.completed, w.quanta, w.ticks, w.steals, w.panicked
        );
    }
    for (id, msg) in &result.panics {
        println!("  match {id} panicked: {msg}");
    }

    // Telemetry rollup: per-shard and fleet-wide tick latency.
    println!("\ntick latency (ms):");
    for (shard, ticks) in result.rollup.shard_ticks.iter().enumerate() {
        if let Some(t) = ticks {
            println!(
                "  shard {shard}: p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}  ({} frames)",
                t.p50, t.p90, t.p99, t.max, t.count
            );
        }
    }
    if let Some(t) = result.rollup.fleet_ticks {
        println!(
            "  fleet:   p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}  ({} frames)",
            t.p50, t.p90, t.p99, t.max, t.count
        );
    }

    let matches_per_sec = result.completed() as f64 / elapsed;
    let ticks_per_sec = result.total_ticks() as f64 / elapsed;
    println!(
        "\nthroughput: {matches_per_sec:.1} matches/sec, {ticks_per_sec:.0} ticks/sec \
         aggregate over {elapsed:.2}s"
    );

    // Per-match lines on request (WATCHMEN_FLEET_LINES=1) — the raw
    // material behind the summary, and the unit the determinism test
    // compares across worker counts.
    if std::env::var("WATCHMEN_FLEET_LINES").is_ok_and(|v| !v.trim().is_empty()) {
        print!("\n{}", result.match_lines());
    }

    // The audit stream, when a destination was named.
    if let Some(path) = &audit_path {
        let jsonl = result.audit_jsonl();
        match std::fs::write(path, &jsonl) {
            Ok(()) => println!("\nwrote {} audit records to {path}", jsonl.lines().count()),
            Err(e) => {
                eprintln!("failed to write audit stream to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // The two machine-parseable gate lines (deterministic counters only).
    println!("\n{}", result.detection_summary());
    println!("{}", result.summary_line());

    // The plane-overhead probe runs only when recording a bench — it
    // costs two extra mini-fleets (observe on vs. off).
    let recording = std::env::var("WATCHMEN_BENCH_OUT").is_ok_and(|v| !v.trim().is_empty());
    let overhead_pct = if recording && config.observe {
        let pct = measure_plane_overhead(&config);
        println!("observability plane overhead: {pct:.2}% on the tick loop (probe fleets)");
        Some(pct)
    } else {
        None
    };

    // The recorded trajectory, when asked for.
    let fleet_p99 = result.rollup.fleet_ticks.map_or(f64::NAN, |t| t.p99);
    let record = BenchRecord::new("fleet")
        .with_u64("matches", config.matches)
        .with_u64("players", config.players as u64)
        .with_u64("frames", config.frames)
        .with_u64("workers", config.workers as u64)
        .with_u64("completed", result.completed())
        .with_u64("false_verdicts", result.false_verdicts())
        .with_u64("detected_matches", result.detected_matches())
        .with_u64("cheater_matches", result.cheater_matches())
        .with_u64("steals", result.total_steals())
        .with_f64("elapsed_sec", elapsed)
        .with_f64("matches_per_sec", matches_per_sec)
        .with_f64("ticks_per_sec", ticks_per_sec)
        .with_f64("fleet_tick_p99_ms", fleet_p99)
        .with_f64("worst_shard_tick_p99_ms", result.rollup.worst_shard_tick_p99())
        .with_f64_list("shard_tick_p99_ms", &result.rollup.shard_tick_p99s());
    save_or_die(&record);

    // The detection-quality record: the SLO evidence, committed as
    // BENCH_detection.json for a reviewable trajectory.
    let quality = result.detection_quality();
    let ttd = |p: f64| quality.ttd_percentile(p).map_or(f64::NAN, |v| v as f64);
    let mut detection = BenchRecord::new("detection")
        .with_u64("matches", config.matches)
        .with_u64("injected", quality.injected)
        .with_u64("detected", quality.detected)
        .with_u64("false_verdicts", quality.false_verdicts)
        .with_f64("ttd_p50_frames", ttd(50.0))
        .with_f64("ttd_p99_frames", ttd(99.0))
        .with_u64("ttd_budget_frames", TTD_BUDGET_FRAMES)
        .with_u64("slo_ok", u64::from(result.slo_ok()));
    for (check, c) in &quality.per_check {
        detection = detection
            .with_u64(&format!("{check}_tp"), c.true_pos)
            .with_u64(&format!("{check}_fp"), c.false_pos)
            .with_u64(&format!("{check}_fn"), c.false_neg);
    }
    if let Some(pct) = overhead_pct {
        detection = detection.with_f64("plane_overhead_pct", pct);
    }
    save_or_die(&detection);
    if !recording {
        println!(
            "(set WATCHMEN_BENCH_OUT=<dir> to record BENCH_fleet.json + BENCH_detection.json)"
        );
    }

    // Keep the endpoint up for scrapers that want the settled snapshot.
    if server.is_some() {
        if let Ok(ms) = std::env::var("WATCHMEN_METRICS_HOLD_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }
    drop(server);
}

/// Measures what the observability plane costs on the tick loop: two
/// identical mini-fleets, audit/join enabled vs. disabled, compared on
/// aggregate ticks/sec. Positive = the plane is that much slower.
fn measure_plane_overhead(config: &FleetConfig) -> f64 {
    let probe =
        FleetConfig { matches: config.matches.clamp(8, 64), audit: false, ..config.clone() };
    let ticks_per_sec = |observe: bool| {
        let c = FleetConfig { observe, ..probe.clone() };
        let started = Instant::now();
        let run = run_fleet(&c);
        run.total_ticks() as f64 / started.elapsed().as_secs_f64()
    };
    // Warm caches with the plane off, then measure interleaved off/on
    // pairs and keep the best (least scheduler-noise) rate of each side:
    // noise only ever slows a run down, so the max is the robust
    // estimate of true throughput.
    let _ = ticks_per_sec(false);
    let mut off = f64::MIN;
    let mut on = f64::MIN;
    for _ in 0..3 {
        off = off.max(ticks_per_sec(false));
        on = on.max(ticks_per_sec(true));
    }
    (off / on - 1.0) * 100.0
}

/// Saves a bench record, failing the run loudly on filesystem errors.
fn save_or_die(record: &BenchRecord) {
    match record.save() {
        Ok(Some(path)) => println!("wrote bench record to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("failed to write bench record {}: {e}", record.file_name());
            std::process::exit(1);
        }
    }
}
