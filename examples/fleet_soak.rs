//! The population-scale soak: a fleet of simultaneous Watchmen matches
//! on the shard-parallel orchestrator, with cheat injection in a known
//! subset and a recorded bench trajectory.
//!
//! ```sh
//! cargo run --release --example fleet_soak
//! ```
//!
//! Defaults to 512 matches × 16 bots × 160 frames with a scripted
//! speed-hacker in every 8th match. Override any knob with
//! `WATCHMEN_FLEET`, e.g.:
//!
//! ```sh
//! WATCHMEN_FLEET="matches=256,players=16,frames=160,workers=4,cheat_every=8" \
//!     cargo run --release --example fleet_soak
//! ```
//!
//! Knobs: `matches`, `players`, `frames`, `workers`, `max_local` (per-
//! worker in-flight cap), `tick_quantum` (frames per scheduler quantum),
//! `seed`, `cheat_every` (0 = all honest).
//!
//! The final `fleet summary:` line is machine-parseable (ci.sh gates on
//! it), and with `WATCHMEN_BENCH_OUT=<dir>` set the run also writes
//! `BENCH_fleet.json` — matches/sec, aggregate ticks/sec, per-shard tick
//! p99s — extending the repo's recorded bench trajectory.

use std::time::Instant;

use watchmen::bench::BenchRecord;
use watchmen::fleet::{run_fleet, FleetConfig};

fn main() {
    let config = FleetConfig::from_env().unwrap_or_default();
    println!(
        "fleet soak: {} matches x {} bots x {} frames on {} workers \
         (quantum {} frames, cap {} in flight/worker, cheater in every {})…",
        config.matches,
        config.players,
        config.frames,
        config.workers,
        config.tick_quantum,
        config.max_local,
        if config.cheat_every > 0 {
            format!("{}th match", config.cheat_every)
        } else {
            "no match".to_owned()
        },
    );

    let started = Instant::now();
    let result = run_fleet(&config);
    let elapsed = started.elapsed().as_secs_f64();

    // Per-worker scheduler view.
    println!("\nworkers:");
    for w in &result.workers {
        println!(
            "  shard {}: {} matches completed, {} quanta, {} ticks, {} steals, {} panics",
            w.shard, w.completed, w.quanta, w.ticks, w.steals, w.panicked
        );
    }
    for (id, msg) in &result.panics {
        println!("  match {id} panicked: {msg}");
    }

    // Telemetry rollup: per-shard and fleet-wide tick latency.
    println!("\ntick latency (ms):");
    for (shard, ticks) in result.rollup.shard_ticks.iter().enumerate() {
        if let Some(t) = ticks {
            println!(
                "  shard {shard}: p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}  ({} frames)",
                t.p50, t.p90, t.p99, t.max, t.count
            );
        }
    }
    if let Some(t) = result.rollup.fleet_ticks {
        println!(
            "  fleet:   p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}  ({} frames)",
            t.p50, t.p90, t.p99, t.max, t.count
        );
    }

    let matches_per_sec = result.completed() as f64 / elapsed;
    let ticks_per_sec = result.total_ticks() as f64 / elapsed;
    println!(
        "\nthroughput: {matches_per_sec:.1} matches/sec, {ticks_per_sec:.0} ticks/sec \
         aggregate over {elapsed:.2}s"
    );

    // Per-match lines on request (WATCHMEN_FLEET_LINES=1) — the raw
    // material behind the summary, and the unit the determinism test
    // compares across worker counts.
    if std::env::var("WATCHMEN_FLEET_LINES").is_ok_and(|v| !v.trim().is_empty()) {
        print!("\n{}", result.match_lines());
    }

    // The machine-parseable gate line (deterministic counters only).
    println!("\n{}", result.summary_line());

    // The recorded trajectory, when asked for.
    let fleet_p99 = result.rollup.fleet_ticks.map_or(f64::NAN, |t| t.p99);
    let record = BenchRecord::new("fleet")
        .with_u64("matches", config.matches)
        .with_u64("players", config.players as u64)
        .with_u64("frames", config.frames)
        .with_u64("workers", config.workers as u64)
        .with_u64("completed", result.completed())
        .with_u64("false_verdicts", result.false_verdicts())
        .with_u64("detected_matches", result.detected_matches())
        .with_u64("cheater_matches", result.cheater_matches())
        .with_u64("steals", result.total_steals())
        .with_f64("elapsed_sec", elapsed)
        .with_f64("matches_per_sec", matches_per_sec)
        .with_f64("ticks_per_sec", ticks_per_sec)
        .with_f64("fleet_tick_p99_ms", fleet_p99)
        .with_f64("worst_shard_tick_p99_ms", result.rollup.worst_shard_tick_p99())
        .with_f64_list("shard_tick_p99_ms", &result.rollup.shard_tick_p99s());
    match record.save() {
        Ok(Some(path)) => println!("wrote bench record to {}", path.display()),
        Ok(None) => println!("(set WATCHMEN_BENCH_OUT=<dir> to record BENCH_fleet.json)"),
        Err(e) => {
            eprintln!("failed to write bench record: {e}");
            std::process::exit(1);
        }
    }
}
