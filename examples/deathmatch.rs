//! A full 48-player deathmatch on the q3dm17-like arena: the paper's
//! headline workload, with a live scoreboard, the Figure 1 presence
//! heatmap, a network replay over the simnet, a secured-node segment
//! (including a scripted cheater whose violations trigger flight-recorder
//! dumps), and a final telemetry snapshot in Prometheus text format.
//!
//! ```sh
//! cargo run --release --example deathmatch [players] [frames]
//! ```
//!
//! Set `WATCHMEN_TRACE=dump` to print the violation dumps in full, or
//! `WATCHMEN_TRACE=chrome:<path>` to additionally write a merged Chrome
//! `trace_event` JSON (load it at `ui.perfetto.dev` or
//! `chrome://tracing`). Set `WATCHMEN_METRICS_ADDR=127.0.0.1:9464` to
//! serve the global registry live on `/metrics` while the match runs
//! (`WATCHMEN_METRICS_HOLD_MS=<ms>` keeps it up after the final
//! snapshot).

use std::sync::Arc;

use watchmen::core::node::{NodeEvent, WatchmenNode};
use watchmen::core::overlay::run_watchmen;
use watchmen::core::proxy::ProxySchedule;
use watchmen::core::sans_io::ProtocolCore;
use watchmen::core::WatchmenConfig;
use watchmen::crypto::schnorr::{Keypair, PublicKey};
use watchmen::game::heatmap::Heatmap;
use watchmen::game::trace::GameTrace;
use watchmen::game::{GameConfig, GameEvent, PlayerId};
use watchmen::net::fault::FaultPlan;
use watchmen::net::{latency, SimNetwork};
use watchmen::telemetry::{
    causal_chain, export, global, FlightDump, FlightRecorder, MetricValue, MetricsServer, TraceMode,
};
use watchmen::world::{maps, GameMap, PhysicsConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 2 {
        usage_error(&format!("expected at most 2 arguments, got {}", args.len()));
    }
    let players: usize = match args.first() {
        None => 48,
        Some(a) => a.parse().unwrap_or_else(|_| usage_error(&format!("bad players {a:?}"))),
    };
    let frames: u64 = match args.get(1) {
        None => 2400,
        Some(a) => a.parse().unwrap_or_else(|_| usage_error(&format!("bad frames {a:?}"))),
    };
    if players < 2 {
        usage_error("players must be >= 2");
    }

    // The live scrape endpoint over the process-wide registry, when
    // WATCHMEN_METRICS_ADDR asks for one.
    let metrics_server = match MetricsServer::from_env(
        Arc::new(|| global().snapshot()),
        Arc::new(|name| global().help_for(name)),
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind WATCHMEN_METRICS_ADDR: {e}");
            std::process::exit(1);
        }
    };
    if let Some(server) = &metrics_server {
        println!("metrics endpoint listening on {}", server.local_addr());
    }

    let map = maps::q3dm17_like();
    println!("map: {map}");
    println!("{}\n", map.to_ascii());

    println!(
        "running a {players}-player deathmatch for {frames} frames ({}s of play)…",
        frames / 20
    );
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    let trace = GameTrace::record(config, players, 2013, frames);

    // Event tally.
    let (mut shots, mut hits, mut kills, mut falls, mut pickups) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut scores = vec![0i64; players];
    for frame in &trace.frames {
        for e in &frame.events {
            match e {
                GameEvent::Shot { .. } => shots += 1,
                GameEvent::Hit { .. } => hits += 1,
                GameEvent::Kill { attacker, victim, .. } => {
                    kills += 1;
                    if attacker != victim {
                        scores[attacker.index()] += 1;
                    }
                    scores[victim.index()] -= 0; // deaths tracked implicitly
                }
                GameEvent::Fall { victim } => {
                    falls += 1;
                    scores[victim.index()] -= 1;
                }
                GameEvent::Pickup { .. } => pickups += 1,
                GameEvent::Respawn { .. } => {}
            }
        }
    }
    println!("events: {shots} shots, {hits} hits, {kills} kills, {falls} falls, {pickups} pickups");

    // Top 5 scoreboard.
    let mut board: Vec<(usize, i64)> = scores.iter().copied().enumerate().collect();
    board.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\ntop fraggers:");
    for (rank, (p, s)) in board.iter().take(5).enumerate() {
        println!("  {}. p{p} with {s} frags", rank + 1);
    }

    // Figure 1: the presence heatmap.
    let heat = Heatmap::from_trace(&map, &trace);
    println!("\npresence heatmap (log-normalized, '9' = hottest):");
    println!("{}", heat.to_ascii());
    println!(
        "\nconcentration: top decile of visited cells holds {:.0}% of presence (gini {:.2})",
        heat.top_share(0.1) * 100.0,
        heat.gini()
    );

    // --- Network replay: the same match over the simulated internet.
    let net_frames = frames.min(600);
    let mut net_trace = trace.clone();
    net_trace.frames.truncate(net_frames as usize);
    let watchmen_config = WatchmenConfig::default();
    println!("\nreplaying {net_frames} frames over the simnet (king-like latency, 1% loss)…");
    let report = run_watchmen(
        &net_trace,
        &map,
        &watchmen_config,
        latency::king_like(players, 2013),
        0.01,
        2013,
    );
    println!(
        "overlay: {} updates delivered, {} dropped, {:.1}% late-or-lost, \
         mean up {:.1} kbps (max {:.1}), mean down {:.1} kbps",
        report.updates_delivered,
        report.network_dropped,
        report.late_or_lost * 100.0,
        report.mean_up_kbps,
        report.max_up_kbps,
        report.mean_down_kbps,
    );

    // --- Secured segment: a small cluster of full WatchmenNodes (signed
    // envelopes, proxy supervision, handoffs) over an instant bus, enough
    // frames to cross several proxy epochs.
    let cluster_size = players.clamp(3, 12);
    let cluster_frames = (net_frames as usize).min(130);
    println!(
        "\nrunning {cluster_size} secured nodes for {cluster_frames} frames \
         (signatures, proxies, handoffs; p2 speed-hacks, p1 replays)…"
    );
    let (recorders, dumps) = run_secured_segment(&trace, &map, cluster_size, cluster_frames);
    report_violations(&recorders, &dumps);

    // --- Faulted segment: with `WATCHMEN_FAULTS` set (e.g.
    // `loss=0.05,dup=0.01,reorder=0.25,reorder_ms=40`), run a 16-node
    // secured cluster over the simnet under the requested fault plan plus
    // one scripted proxy crash, and report how the reliable control plane
    // coped. The `fault summary:` line is machine-parseable; ci.sh gates
    // on it.
    if let Some(plan) = FaultPlan::from_env() {
        run_faulted_segment(plan);
    }

    // --- Churn segment: with `WATCHMEN_CHURN` set (any non-empty value),
    // run a 16-veteran secured cluster under 5% burst loss through four
    // mid-game joins, two graceful leaves and two crash-evictions — a
    // membership event roughly every other second, the densest the
    // one-epoch join window admits — and report the outcome on the
    // machine-parseable `churn summary:` line that ci.sh gates on.
    if std::env::var("WATCHMEN_CHURN").is_ok_and(|v| !v.trim().is_empty()) {
        run_churn_segment();
    }

    // --- Telemetry: what the instrumented layers recorded.
    let snap = global().snapshot();
    println!("\ntelemetry highlights:");
    println!("  proxy handoffs sent:       {}", snap.counter_sum("proxy_handoffs_total"));
    println!("  network messages dropped:  {}", snap.counter_sum("net_messages_dropped_total"));
    println!("  updates delivered:         {}", snap.counter_sum("sim_updates_delivered_total"));
    if let Some(MetricValue::Histogram { count, p50, p90, p99, max, .. }) =
        snap.get_with("sim_player_up_kbps", &[("arch", "watchmen")])
    {
        println!(
            "  per-player upload kbps:    p50 {p50:.1}  p90 {p90:.1}  p99 {p99:.1}  \
             max {max:.1}  ({count} players)"
        );
    }
    if let Some(MetricValue::Histogram { count, p50, p99, .. }) = snap.get("node_tick_duration_ms")
    {
        println!("  node tick ms:              p50 {p50:.3}  p99 {p99:.3}  ({count} ticks)");
    }

    println!("\nfull snapshot (Prometheus text format):");
    print!("{}", export::prometheus_text_with_help(&snap, &|n| global().help_for(n)));

    // Keep the endpoint up for scrapers that want the settled snapshot.
    if metrics_server.is_some() {
        if let Ok(ms) = std::env::var("WATCHMEN_METRICS_HOLD_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }
    drop(metrics_server);
}

/// Rejects malformed CLI input loudly: silently soaking the default
/// workload under a typo'd argument burns minutes and gates on the wrong
/// run.
fn usage_error(reason: &str) -> ! {
    eprintln!("error: {reason}");
    eprintln!("usage: deathmatch [players] [frames]   (defaults: 48 players, 2400 frames)");
    std::process::exit(2);
}

/// Drives a small cluster of [`WatchmenNode`]s over an in-memory instant
/// bus, feeding them the first `cluster_size` players' recorded states —
/// except player 2, who speed-hacks every fourth frame, and player 1,
/// whose first state update is replayed verbatim once. Returns every
/// node's flight recorder and the violation dumps they captured.
fn run_secured_segment(
    trace: &GameTrace,
    map: &GameMap,
    cluster_size: usize,
    frames: usize,
) -> (Vec<Arc<FlightRecorder>>, Vec<FlightDump>) {
    let seed = 2013u64;
    let keys: Vec<Keypair> =
        (0..cluster_size).map(|i| Keypair::generate(seed ^ i as u64)).collect();
    let directory: Vec<PublicKey> = keys.iter().map(Keypair::public).collect();
    let mut cores: Vec<ProtocolCore> = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            ProtocolCore::new(WatchmenNode::new(
                PlayerId(i as u32),
                k,
                directory.clone(),
                seed,
                WatchmenConfig::default(),
                map.clone(),
                PhysicsConfig::default(),
            ))
        })
        .collect();
    let mut bus: std::collections::VecDeque<(PlayerId, PlayerId, Vec<u8>)> =
        std::collections::VecDeque::new();
    let mut replayed: Option<(PlayerId, PlayerId, Vec<u8>)> = None;
    for frame in 0..frames as u64 {
        let states = &trace.frames[frame as usize].states;
        for i in 0..cluster_size {
            let mut state = states[i];
            // The scripted cheater: p2 reports a teleported position
            // every fourth frame, which its proxy's physics check flags.
            if i == 2 && frame > 0 && frame % 4 == 0 {
                state.position.x += 30.0;
            }
            let output = cores[i].tick(frame, &state);
            for o in output.datagrams {
                if i == 1 && replayed.is_none() && o.bytes.len() > 60 {
                    // Keep p1's first state update for a later replay.
                    replayed = Some((PlayerId(1), o.to, o.bytes.clone()));
                }
                bus.push_back((PlayerId(i as u32), o.to, o.bytes));
            }
        }
        // Half-way through, re-deliver the captured bytes: a replay cheat
        // the anti-replay window rejects and dumps.
        if frame == frames as u64 / 2 {
            if let Some(r) = replayed.take() {
                bus.push_back(r);
            }
        }
        while let Some((sender, to, bytes)) = bus.pop_front() {
            let output = cores[to.index()].datagram(frame, sender, &bytes);
            for o in output.datagrams {
                bus.push_back((to, o.to, o.bytes));
            }
        }
    }
    let recorders = cores.iter().map(|c| c.node().recorder()).collect();
    let dumps = cores.iter_mut().flat_map(|c| c.node_mut().take_flight_dumps()).collect();
    (recorders, dumps)
}

/// Runs a 16-node secured cluster over the simnet under the given fault
/// plan, plus a scripted crash of player 0's epoch-2 proxy so the
/// liveness fallback is always exercised. All players are honest: every
/// severe verdict is by construction a false one, and the printed
/// `fault summary:` line reports it alongside the reliable-layer
/// counters (ci.sh parses that line and fails the build on any
/// unrecovered handoff chain or false verdict).
#[allow(clippy::needless_range_loop)] // nodes and the net are index-parallel
fn run_faulted_segment(plan: FaultPlan) {
    const PLAYERS: usize = 16;
    const SEED: u64 = 2013;
    const FRAME_MS: f64 = 50.0;
    const FRAMES: u64 = 320;
    const DRAIN: u64 = 60;

    let config = WatchmenConfig { proxy_liveness_k: 2, ..WatchmenConfig::default() };
    let schedule = ProxySchedule::new(SEED, PLAYERS, config.proxy_period);
    let crashed = schedule.proxy_of(PlayerId(0), 2 * config.proxy_period);
    let plan = plan.with_crash(crashed.index(), 55.0 * FRAME_MS, 125.0 * FRAME_MS);
    println!(
        "\nWATCHMEN_FAULTS set: {PLAYERS} secured nodes for {} frames under faults \
         (scripted crash of p{} in frames 55..125)…",
        FRAMES + DRAIN,
        crashed.0
    );

    let mut net: SimNetwork<Vec<u8>> = SimNetwork::new(PLAYERS, latency::constant(8.0), 0.0, 77);
    net.set_fault_plan(plan);

    let keys: Vec<Keypair> = (0..PLAYERS).map(|i| Keypair::generate(SEED ^ i as u64)).collect();
    let directory: Vec<PublicKey> = keys.iter().map(Keypair::public).collect();
    // An open arena: the faulted segment gates on *transport*-level
    // recovery, and the position checker's wall-geometry corner cases
    // fire even on honest q3dm17 traces.
    let map = maps::arena(32, 10.0);
    let mut cores: Vec<ProtocolCore> = keys
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            ProtocolCore::new(WatchmenNode::new(
                PlayerId(i as u32),
                k,
                directory.clone(),
                SEED,
                config,
                map.clone(),
                PhysicsConfig::default(),
            ))
        })
        .collect();

    let fault_trace = GameTrace::record(
        GameConfig { map, ..GameConfig::default() },
        PLAYERS,
        SEED,
        FRAMES + DRAIN,
    );
    let mut severe = 0u64;
    let mut tally = |events: &[NodeEvent]| {
        for e in events {
            if let NodeEvent::Suspicion { rating, .. } = e {
                if rating.score >= 6 {
                    severe += 1;
                }
            }
        }
    };
    for f in 0..FRAMES + DRAIN {
        for d in net.advance_to(f as f64 * FRAME_MS) {
            if net.is_crashed(d.to) {
                continue;
            }
            let output = cores[d.to].datagram(f, PlayerId(d.from as u32), &d.payload);
            tally(&output.events);
            for o in output.datagrams {
                let size = o.bytes.len();
                net.send(d.to, o.to.index(), o.bytes, size);
            }
        }
        for i in 0..PLAYERS {
            if net.is_crashed(i) {
                continue;
            }
            let output = cores[i].tick(f, &fault_trace.frames[f as usize].states[i]);
            tally(&output.events);
            for o in output.datagrams {
                let size = o.bytes.len();
                net.send(i, o.to.index(), o.bytes, size);
            }
        }
    }

    let stats = net.stats();
    stats.assert_invariant("deathmatch faulted segment");
    let (mut retransmits, mut acks, mut fallbacks, mut abandoned, mut pending) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for c in &cores {
        let n = c.node();
        let cs = n.control_stats();
        retransmits += cs.retransmits;
        acks += cs.acks_received;
        fallbacks += cs.proxy_fallbacks;
        abandoned += cs.abandoned;
        pending += n.pending_handoffs() as u64;
    }
    println!(
        "fault summary: retransmits={retransmits} acks={acks} fallbacks={fallbacks} \
         abandoned={abandoned} pending_handoffs={pending} severe_false_verdicts={severe} \
         dup={} dropped={}",
        stats.duplicated, stats.dropped
    );
}

/// The churn soak: 16 veterans plus a lobby with signing keys absorb
/// four mid-game joins, two graceful leaves and two crash-evictions
/// under 5% burst loss. Roster agreement is checked at every renewal
/// boundary across all online active members; the `churn summary:` line
/// reports the counters ci.sh gates on (joins/leaves/evictions applied,
/// joiner convergence, roster agreement, false verdicts).
#[allow(clippy::needless_range_loop, clippy::too_many_lines)] // index-parallel driver loop
fn run_churn_segment() {
    use watchmen::core::lobby::GameLobby;
    use watchmen::net::fault::GilbertElliott;

    const VETERANS: usize = 16;
    const JOINERS: usize = 4;
    const TOTAL: usize = VETERANS + JOINERS;
    const SEED: u64 = 4177;
    const FRAME_MS: f64 = 50.0;
    const FRAMES: u64 = 840;
    const DRAIN: u64 = 40;
    const JOIN_FRAMES: [u64; JOINERS] = [50, 130, 210, 290];
    const LEAVES: [(usize, u64); 2] = [(3, 370), (5, 450)];
    const CRASHED: [usize; 2] = [7, 9];
    const CRASH_FRAME: u64 = 530;

    let config = WatchmenConfig { proxy_liveness_k: 2, ..WatchmenConfig::default() };
    let period = config.proxy_period;
    println!(
        "\nWATCHMEN_CHURN set: {VETERANS} veterans for {} frames under 5% burst loss — \
         {JOINERS} mid-game joins, {} graceful leaves, {} crash-evictions…",
        FRAMES + DRAIN,
        LEAVES.len(),
        CRASHED.len()
    );

    let mut lobby = GameLobby::new(SEED, config, config.membership_timeout_frames)
        .with_keys(Keypair::generate(SEED ^ 0x10bb));
    let keys: Vec<Keypair> = (0..TOTAL).map(|i| Keypair::generate(SEED ^ i as u64)).collect();
    for k in keys.iter().take(VETERANS) {
        lobby.register(k.public());
    }
    lobby.start();
    let lobby_key = lobby.lobby_key().expect("lobby has keys");

    let mut plan = FaultPlan::new(0xc4u64)
        .with_burst_loss(GilbertElliott::with_mean_loss(0.05))
        .with_duplication(0.01);
    for (j, &f) in JOIN_FRAMES.iter().enumerate() {
        plan = plan.with_join(VETERANS + j, f as f64 * FRAME_MS);
    }
    for &(leaver, announce) in &LEAVES {
        let unplug = ((announce.div_ceil(period) + 1) * period + 10) as f64 * FRAME_MS;
        plan = plan.with_leave(leaver, unplug);
    }
    for &c in &CRASHED {
        plan = plan.with_crash(c, CRASH_FRAME as f64 * FRAME_MS, f64::INFINITY);
    }
    let mut net: SimNetwork<Vec<u8>> = SimNetwork::new(TOTAL, latency::constant(8.0), 0.0, 77);
    net.set_fault_plan(plan);

    let map = maps::arena(32, 10.0);
    let mut cores: Vec<Option<ProtocolCore>> = keys
        .iter()
        .take(VETERANS)
        .enumerate()
        .map(|(i, k)| {
            Some(ProtocolCore::new(
                WatchmenNode::new(
                    PlayerId(i as u32),
                    k.clone(),
                    lobby.directory().to_vec(),
                    SEED,
                    config,
                    map.clone(),
                    PhysicsConfig::default(),
                )
                .with_lobby_key(lobby_key),
            ))
        })
        .collect();
    cores.resize_with(TOTAL, || None);

    let churn_trace =
        GameTrace::record(GameConfig { map, ..GameConfig::default() }, TOTAL, SEED, FRAMES + DRAIN);

    let (mut severe, mut bad_sigs) = (0u64, 0u64);
    let mut bootstrap_frame: std::collections::BTreeMap<usize, u64> = Default::default();
    let mut admit_frames: std::collections::BTreeMap<usize, u64> = Default::default();
    let mut agreement_ok = true;
    let mut boundaries = 0u64;
    let mut join_cursor = 0usize;

    for f in 0..FRAMES + DRAIN {
        if join_cursor < JOINERS && f == JOIN_FRAMES[join_cursor] {
            let idx = VETERANS + join_cursor;
            let (id, ticket, roster) =
                lobby.admit_midgame(keys[idx].public(), f).expect("mid-game admission");
            admit_frames.insert(idx, ticket.admit_frame);
            cores[idx] = Some(ProtocolCore::new(WatchmenNode::new_joining(
                id,
                keys[idx].clone(),
                roster,
                ticket,
                lobby_key,
                SEED,
                config,
                maps::arena(32, 10.0),
                PhysicsConfig::default(),
            )));
            join_cursor += 1;
        }
        for &(leaver, announce) in &LEAVES {
            if f == announce {
                lobby.leave(PlayerId(leaver as u32), f);
                let outs = cores[leaver].as_mut().expect("leaver exists").announce_leave(f);
                for o in outs.datagrams {
                    let size = o.bytes.len();
                    net.send(leaver, o.to.index(), o.bytes, size);
                }
            }
        }

        for d in net.advance_to(f as f64 * FRAME_MS) {
            if net.is_crashed(d.to) || net.is_offline(d.to) {
                continue;
            }
            let Some(core) = cores[d.to].as_mut() else { continue };
            let output = core.datagram(f, PlayerId(d.from as u32), &d.payload);
            for e in &output.events {
                match e {
                    NodeEvent::Suspicion { rating, .. } if rating.score >= 6 => severe += 1,
                    NodeEvent::BadSignature { .. } => bad_sigs += 1,
                    NodeEvent::BootstrapReceived { .. } => {
                        bootstrap_frame.entry(d.to).or_insert(f);
                    }
                    _ => {}
                }
            }
            for o in output.datagrams {
                let size = o.bytes.len();
                net.send(d.to, o.to.index(), o.bytes, size);
            }
        }
        for i in 0..TOTAL {
            if net.is_crashed(i) || net.is_offline(i) {
                continue;
            }
            let Some(core) = cores[i].as_mut() else { continue };
            let output = core.tick(f, &churn_trace.frames[f as usize].states[i]);
            for e in &output.events {
                if let NodeEvent::Suspicion { rating, .. } = e {
                    if rating.score >= 6 {
                        severe += 1;
                    }
                }
            }
            for o in output.datagrams {
                let size = o.bytes.len();
                net.send(i, o.to.index(), o.bytes, size);
            }
        }

        if f > 0 && f % period == 0 {
            let views: Vec<(u64, [u8; 32])> = (0..TOTAL)
                .filter(|&i| !net.is_crashed(i) && !net.is_offline(i))
                .filter_map(|i| {
                    cores[i]
                        .as_ref()
                        .map(ProtocolCore::node)
                        .filter(|n| n.is_active_member())
                        .map(|n| (n.roster_epoch(), n.roster_digest()))
                })
                .collect();
            if views.windows(2).any(|w| w[0] != w[1]) {
                agreement_ok = false;
            }
            boundaries += 1;
        }
    }

    net.stats().assert_invariant("deathmatch churn segment");
    let witness = cores[0].as_ref().expect("node 0 lives").node();
    let cs = witness.churn_stats();
    let joiners_converged = admit_frames
        .iter()
        .filter(|(j, &admit)| {
            bootstrap_frame.get(j).is_some_and(|&got| got <= admit + period)
                && cores[**j].as_ref().is_some_and(|c| c.node().is_active_member())
        })
        .count();
    let (mut bootstraps_sent, mut stale_drops) = (0u64, 0u64);
    for c in cores.iter().flatten() {
        bootstraps_sent += c.node().churn_stats().bootstraps_sent;
        stale_drops += c.node().churn_stats().stale_drops;
    }
    println!(
        "churn summary: joins={} leaves={} evictions={} bootstraps_sent={bootstraps_sent} \
         joiners_converged={joiners_converged} boundaries={boundaries} roster_agreement={} \
         stale_drops={stale_drops} false_verdicts={severe} bad_signatures={bad_sigs}",
        cs.joins_applied,
        cs.leaves_applied,
        cs.evictions_applied,
        u64::from(agreement_ok),
    );
}

/// Prints what the flight recorders captured around the scripted
/// violations: a summary per dump, the cross-node causal chain of the
/// first position violation, and — per `WATCHMEN_TRACE` — either the full
/// dumps (`dump`) or a merged Chrome trace file (`chrome:<path>`).
fn report_violations(recorders: &[Arc<FlightRecorder>], dumps: &[FlightDump]) {
    println!("\nflight-recorder violations captured: {}", dumps.len());
    for d in dumps.iter().take(6) {
        println!(
            "  {} on p{} ({} events retained, trace {})",
            d.reason,
            d.subject,
            d.events.len(),
            d.trace_id,
        );
    }

    // Reconstruct the causal chain of one offending message across every
    // node: origin send → proxy relay → verifier's verdict.
    let refs: Vec<&FlightRecorder> = recorders.iter().map(Arc::as_ref).collect();
    if let Some(dump) = dumps.iter().find(|d| d.trace_id.is_some()) {
        let chain = causal_chain(&refs, dump.trace_id);
        println!(
            "\ncausal chain of the offending message (trace {}, \"{}\"):",
            dump.trace_id, dump.reason
        );
        for e in &chain {
            println!("  {e}");
        }
    }

    match TraceMode::from_env() {
        TraceMode::Off => {
            println!("\n(set WATCHMEN_TRACE=dump or chrome:<path> for full trace output)");
        }
        TraceMode::Dump => {
            for d in dumps {
                println!("\n{d}");
            }
        }
        TraceMode::Chrome(path) => {
            let mut events = Vec::new();
            for r in &refs {
                events.extend(r.snapshot());
            }
            events.sort_by_key(|e| e.at_us);
            let json = export::chrome_trace(&events);
            match std::fs::write(&path, &json) {
                Ok(()) => println!(
                    "\nwrote {} trace events to {path} (load at ui.perfetto.dev)",
                    events.len()
                ),
                Err(e) => eprintln!("\nfailed to write chrome trace to {path}: {e}"),
            }
        }
    }
}
