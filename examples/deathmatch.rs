//! A full 48-player deathmatch on the q3dm17-like arena: the paper's
//! headline workload, with a live scoreboard and the Figure 1 presence
//! heatmap at the end.
//!
//! ```sh
//! cargo run --release --example deathmatch [players] [frames]
//! ```

use watchmen::game::heatmap::Heatmap;
use watchmen::game::trace::GameTrace;
use watchmen::game::{GameConfig, GameEvent};
use watchmen::world::maps;

fn main() {
    let mut args = std::env::args().skip(1).inspect(|a| {
        if a.parse::<u64>().is_err() && !a.contains('/') && !a.contains('.') {
            eprintln!("warning: ignoring unparseable argument {a:?}, using the default");
        }
    });
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let frames: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2400);

    let map = maps::q3dm17_like();
    println!("map: {map}");
    println!("{}\n", map.to_ascii());

    println!("running a {players}-player deathmatch for {frames} frames ({}s of play)…", frames / 20);
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    let trace = GameTrace::record(config, players, 2013, frames);

    // Event tally.
    let (mut shots, mut hits, mut kills, mut falls, mut pickups) = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut scores = vec![0i64; players];
    for frame in &trace.frames {
        for e in &frame.events {
            match e {
                GameEvent::Shot { .. } => shots += 1,
                GameEvent::Hit { .. } => hits += 1,
                GameEvent::Kill { attacker, victim, .. } => {
                    kills += 1;
                    if attacker != victim {
                        scores[attacker.index()] += 1;
                    }
                    scores[victim.index()] -= 0; // deaths tracked implicitly
                }
                GameEvent::Fall { victim } => {
                    falls += 1;
                    scores[victim.index()] -= 1;
                }
                GameEvent::Pickup { .. } => pickups += 1,
                GameEvent::Respawn { .. } => {}
            }
        }
    }
    println!(
        "events: {shots} shots, {hits} hits, {kills} kills, {falls} falls, {pickups} pickups"
    );

    // Top 5 scoreboard.
    let mut board: Vec<(usize, i64)> = scores.iter().copied().enumerate().collect();
    board.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\ntop fraggers:");
    for (rank, (p, s)) in board.iter().take(5).enumerate() {
        println!("  {}. p{p} with {s} frags", rank + 1);
    }

    // Figure 1: the presence heatmap.
    let heat = Heatmap::from_trace(&map, &trace);
    println!("\npresence heatmap (log-normalized, '9' = hottest):");
    println!("{}", heat.to_ascii());
    println!(
        "\nconcentration: top decile of visited cells holds {:.0}% of presence (gini {:.2})",
        heat.top_share(0.1) * 100.0,
        heat.gini()
    );
}
