//! Quickstart: a five-minute tour of the Watchmen public API.
//!
//! Runs a small bot deathmatch, records a trace, computes one player's
//! interest/vision sets, derives the verifiable proxy schedule, signs a
//! state update, and runs one verification check.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use watchmen::core::msg::{Envelope, Payload, StateUpdate};
use watchmen::core::proxy::ProxySchedule;
use watchmen::core::subscription::{compute_sets, NoRecency};
use watchmen::core::verify::Verifier;
use watchmen::core::WatchmenConfig;
use watchmen::crypto::schnorr::Keypair;
use watchmen::game::trace::GameTrace;
use watchmen::game::{GameConfig, PlayerId};
use watchmen::world::{maps, PhysicsConfig};

fn main() {
    // 1. Record a short 8-player deathmatch on the q3dm17-like map.
    let map = maps::q3dm17_like();
    let config = GameConfig { map: map.clone(), ..GameConfig::default() };
    let trace = GameTrace::record(config, 8, 42, 200);
    println!("recorded {} frames of an 8-player game on {}", trace.len(), map.name());

    // 2. The subscription model: partition everyone from player 0's view.
    let wm_config = WatchmenConfig::default();
    let states = &trace.frames[199].states;
    let sets = compute_sets(PlayerId(0), states, &map, &wm_config, &NoRecency);
    println!(
        "player p0 sees: IS = {:?}, VS = {:?}, {} others",
        sets.interest,
        sets.vision,
        sets.others.len()
    );

    // 3. The verifiable proxy schedule: every node computes the same
    // assignment from the shared seed, with no communication.
    let schedule = ProxySchedule::new(42, 8, wm_config.proxy_period);
    let frame = 199;
    println!(
        "at frame {frame}, p0's proxy is {} (next epoch: {})",
        schedule.proxy_of(PlayerId(0), frame),
        schedule.next_proxy_of(PlayerId(0), frame)
    );

    // 4. Lightweight signatures on wire messages.
    let keys = Keypair::generate(0xD00D);
    let update = Envelope {
        from: PlayerId(0),
        seq: 1,
        frame,
        payload: Payload::State(StateUpdate::from(&states[0])),
    };
    let signed = update.sign(&keys);
    println!(
        "signed state update: {} bytes total ({} payload + 16 signature), verifies: {}",
        signed.wire_size(),
        update.wire_size(),
        signed.verify(&keys.public())
    );

    // 5. A sanity check: is a 20-unit single-frame move legal?
    let verifier = Verifier::new(wm_config, PhysicsConfig::default());
    let prev = states[0].position;
    let teleport = prev + watchmen::math::Vec3::new(20.0, 0.0, 0.0);
    let score = verifier.check_position(prev, teleport, 1, &map);
    println!("teleporting 20 units in one frame rates {score}/10 (10 = certainly cheating)");

    // WATCHMEN_TELEMETRY=prom|json dumps everything the run recorded.
    watchmen::telemetry::dump_from_env("quickstart");
}
