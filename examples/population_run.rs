//! Population soak runner: thousands of matches over one persistent
//! identity population, with every match outcome folded into the
//! durable reputation store so bans cross match boundaries.
//!
//! ```sh
//! cargo run --release --example population_run
//! ```
//!
//! Defaults to 2 000 matches over 256 identities (~10% repeat
//! cheaters). Override with `WATCHMEN_POPULATION`, e.g.:
//!
//! ```sh
//! WATCHMEN_POPULATION="matches=5000,players=512,cheaters=150,seed=7" \
//!     cargo run --release --example population_run
//! ```
//!
//! Knobs: `matches`, `players`, `cheaters` (permille), `seed`,
//! `match_size`, `round_matches`, `reports`, `cheat_failed`,
//! `honest_failed`, `workers`, `max_local`, `compact_bytes`.
//!
//! The store persists to `WATCHMEN_STORE_DIR` (default: a fresh
//! directory under the system temp dir — re-run with the same dir and
//! the bans carry over). Prints the machine-parseable
//! `population summary:` line ci.sh gates on; with
//! `WATCHMEN_BENCH_OUT=<dir>` set the run also writes
//! `BENCH_reputation.json` with time-to-ban percentiles and the
//! false-ban count.

use std::time::Instant;

use watchmen::bench::BenchRecord;
use watchmen::fleet::{run_population, PopulationConfig};
use watchmen::store::FsDir;

fn main() {
    let config = PopulationConfig::from_env().unwrap_or_default();
    let store_dir = std::env::var("WATCHMEN_STORE_DIR").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("watchmen-population-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    println!(
        "population soak: {} matches over {} identities ({}‰ cheaters) on {} workers, \
         store at {store_dir}…",
        config.matches, config.players, config.cheater_permille, config.workers,
    );

    let dir = match FsDir::open(&store_dir) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("cannot open store dir {store_dir}: {e}");
            std::process::exit(1);
        }
    };
    let started = Instant::now();
    let result = run_population(&config, Box::new(dir));
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", result.summary_line());
    println!(
        "population soak: {} matches ({} aborted) in {elapsed:.2}s over {} rounds, \
         store: {} commits / {} compactions / {} B WAL",
        result.matches_run,
        result.matches_aborted,
        result.rounds,
        result.store_commits,
        result.store_compactions,
        result.store_wal_bytes,
    );

    let ttb = |p: f64| result.ttb_percentile(p).map_or(f64::NAN, |v| v as f64);
    let record = BenchRecord::new("reputation")
        .with_u64("matches", result.matches_run)
        .with_u64("players", result.players as u64)
        .with_u64("cheaters", result.cheaters as u64)
        .with_u64("cheaters_banned", result.cheaters_banned as u64)
        .with_u64("false_bans", result.false_bans as u64)
        .with_f64("false_ban_rate", result.false_ban_rate())
        .with_f64("ttb_p50_matches", ttb(50.0))
        .with_f64("ttb_p90_matches", ttb(90.0))
        .with_f64("ttb_p99_matches", ttb(99.0))
        .with_u64("refused_admissions", result.refused_admissions)
        .with_u64("store_commits", result.store_commits)
        .with_u64("store_compactions", result.store_compactions)
        .with_u64("workers", config.workers as u64)
        .with_u64("ok", u64::from(result.ok()))
        .with_f64("elapsed_sec", elapsed);
    match record.save() {
        Ok(Some(path)) => println!("wrote bench record to {}", path.display()),
        Ok(None) => {
            println!("(set WATCHMEN_BENCH_OUT=<dir> to record BENCH_reputation.json)");
        }
        Err(e) => {
            eprintln!("failed to write bench record {}: {e}", record.file_name());
            std::process::exit(1);
        }
    }

    if !result.ok() {
        eprintln!("population SLO violated");
        std::process::exit(1);
    }
}
