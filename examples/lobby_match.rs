//! A full match through the lobby: players register their keys, the lobby
//! freezes the roster into the shared seed + directory, every player runs
//! a [`watchmen::core::node::WatchmenNode`], proxy-side verification
//! reports flow back to the lobby's reputation system, and a speed-hacking
//! player gets banned and ejected from the proxy pool mid-match.
//!
//! ```sh
//! cargo run --release --example lobby_match
//! ```

use std::collections::VecDeque;

use watchmen::core::lobby::{GameLobby, LobbyEvent, PlayerStatus};
use watchmen::core::node::{NodeEvent, WatchmenNode};
use watchmen::core::WatchmenConfig;
use watchmen::crypto::schnorr::Keypair;
use watchmen::game::trace::standard_trace;
use watchmen::game::PlayerId;
use watchmen::world::{maps, PhysicsConfig};

const PLAYERS: usize = 10;
const CHEATER: u32 = 4;
const FRAMES: u64 = 600;

fn main() {
    let config = WatchmenConfig::default();
    let seed = 0x10bb7;

    // --- Lobby phase: everyone registers a key; the roster freezes.
    let mut lobby = GameLobby::new(seed, config, 100);
    let keys: Vec<Keypair> = (0..PLAYERS).map(|i| Keypair::generate(seed ^ i as u64)).collect();
    for k in &keys {
        lobby.register(k.public());
    }
    lobby.start();
    println!("lobby: {} players registered, roster frozen, seed {seed:#x}", lobby.players());

    // --- Match phase: one node per player over an in-memory bus.
    let map = maps::q3dm17_like();
    let mut nodes: Vec<WatchmenNode> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| {
            WatchmenNode::new(
                PlayerId(i as u32),
                k.clone(),
                lobby.directory().to_vec(),
                seed,
                config,
                map.clone(),
                PhysicsConfig::default(),
            )
        })
        .collect();
    let trace = standard_trace(PLAYERS, seed, FRAMES);

    let mut bus: VecDeque<(PlayerId, PlayerId, Vec<u8>)> = VecDeque::new();
    let mut banned_frame: Option<u64> = None;
    for frame in 0..FRAMES {
        let states = &trace.frames[frame as usize].states;
        for i in 0..PLAYERS {
            let pid = PlayerId(i as u32);
            if lobby.status(pid) == PlayerStatus::Banned {
                continue; // ejected players stop playing
            }
            let mut state = states[i];
            // The cheater falsifies some of its positions.
            if pid.0 == CHEATER && frame % 5 == 0 && frame > 0 {
                state.position.x += 25.0;
            }
            lobby.heartbeat(pid, frame);
            let output = nodes[i].begin_frame(frame, &state);
            for e in output.events {
                // Epoch summaries (clean or not) feed the reputation
                // denominator.
                if let NodeEvent::Suspicion { subject, rating, .. } = e {
                    lobby.report(pid, subject, &rating);
                }
            }
            for o in output.outgoing {
                bus.push_back((pid, o.to, o.bytes));
            }
        }
        while let Some((sender, to, bytes)) = bus.pop_front() {
            let (out, events) = nodes[to.index()].handle_message(frame, sender, &bytes);
            for o in out {
                bus.push_back((to, o.to, o.bytes));
            }
            for e in events {
                if let NodeEvent::Suspicion { subject, rating, check } = e {
                    // Proxy reports flow to the lobby.
                    lobby.report(to, subject, &rating);
                    if rating.score >= 8 {
                        println!("frame {frame:3}: {to} flags {subject} ({check}, {rating})");
                    }
                }
            }
        }
        for event in lobby.tick(frame) {
            match event {
                LobbyEvent::Banned(p) => {
                    println!(
                        "frame {frame:3}: lobby BANS {p} (suspicion {:.2})",
                        lobby.suspicion(p)
                    );
                    banned_frame.get_or_insert(frame);
                }
                LobbyEvent::Disconnected(p) => {
                    println!("frame {frame:3}: lobby drops {p} (timeout)");
                }
            }
        }
        if banned_frame.is_some() {
            break;
        }
    }

    println!("\nfinal standings:");
    for i in 0..PLAYERS {
        let pid = PlayerId(i as u32);
        println!(
            "  {pid:>3} {:<12} suspicion {:.3}{}",
            format!("{:?}", lobby.status(pid)).to_lowercase(),
            lobby.suspicion(pid),
            if pid.0 == CHEATER { "  ← the cheater" } else { "" }
        );
    }
    match banned_frame {
        Some(f) => println!("\ncheater banned after {f} frames ({:.1} s of play)", f as f64 * 0.05),
        None => println!("\ncheater escaped detection (unexpected!)"),
    }

    // WATCHMEN_TELEMETRY=prom|json dumps everything the run recorded.
    watchmen::telemetry::dump_from_env("lobby_match");
}
