//! A live Watchmen overlay over real UDP sockets on loopback.
//!
//! Spawns one thread per player. Each frame, every player signs a state
//! update and sends it to its current proxy (from the shared verifiable
//! schedule); proxies verify the signature and forward to subscribers.
//! Receivers verify again and tally tampering/spoofing. This is the
//! paper's deployment shape — "players' traffic is processed through
//! proxies" over UDP — on genuine sockets.
//!
//! ```sh
//! cargo run --release --example udp_overlay [players] [frames]
//! ```

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use watchmen::core::msg::{Envelope, Payload, SignedEnvelope, StateUpdate};
use watchmen::core::proxy::ProxySchedule;
use watchmen::crypto::schnorr::{Keypair, PublicKey};
use watchmen::game::{PlayerId, WeaponKind};
use watchmen::math::{Aim, Vec3};
use watchmen::net::udp::UdpEndpoint;

#[derive(Default)]
struct Stats {
    sent: AtomicU64,
    forwarded: AtomicU64,
    delivered: AtomicU64,
    bad_signature: AtomicU64,
}

fn main() {
    let mut args = std::env::args().skip(1).inspect(|a| {
        if a.parse::<u64>().is_err() && !a.contains('/') && !a.contains('.') {
            eprintln!("warning: ignoring unparseable argument {a:?}, using the default");
        }
    });
    let players: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let frames: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed = 0xFEED;

    // Shared, verifiable state: keys and proxy schedule.
    let keys: Vec<Keypair> = (0..players).map(|i| Keypair::generate(seed ^ i as u64)).collect();
    let pubkeys: Vec<PublicKey> = keys.iter().map(Keypair::public).collect();
    let schedule = Arc::new(ProxySchedule::new(seed, players, 40));
    let stats = Arc::new(Stats::default());

    // Bind endpoints first so every thread knows every address.
    let endpoints: Vec<UdpEndpoint> = (0..players)
        .map(|i| UdpEndpoint::bind(i as u32, "127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addresses: HashMap<u32, SocketAddr> =
        endpoints.iter().map(|e| (e.node_id(), e.local_addr().expect("bound"))).collect();
    let addresses = Arc::new(addresses);

    println!("spawning {players} player threads exchanging {frames} frames over UDP loopback…");
    let mut handles = Vec::new();
    for (i, endpoint) in endpoints.into_iter().enumerate() {
        let schedule = Arc::clone(&schedule);
        let addresses = Arc::clone(&addresses);
        let stats = Arc::clone(&stats);
        let my_keys = keys[i].clone();
        let pubkeys = pubkeys.clone();
        handles.push(std::thread::spawn(move || {
            let me = PlayerId(i as u32);
            for frame in 0..frames {
                // Publish a signed state update to my current proxy.
                let update = Envelope {
                    from: me,
                    seq: frame + 1,
                    frame,
                    payload: Payload::State(StateUpdate {
                        position: Vec3::new(frame as f64, i as f64, 0.0),
                        velocity: Vec3::X,
                        aim: Aim::default(),
                        health: 100,
                        armor: 0,
                        weapon: WeaponKind::MachineGun,
                        ammo: 50,
                    }),
                }
                .sign(&my_keys);
                let proxy = schedule.proxy_of(me, frame);
                let dest = addresses[&proxy.0];
                if endpoint.send_to(dest, &update.encode()).is_ok() {
                    stats.sent.fetch_add(1, Ordering::Relaxed);
                }

                // Drain my socket: act as proxy (verify + forward) or as
                // final subscriber (verify + consume).
                while let Ok(Some((_, _, payload))) = endpoint.try_recv() {
                    let Ok(msg) = SignedEnvelope::decode(&payload) else {
                        stats.bad_signature.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let origin = msg.envelope.from;
                    if !msg.verify(&pubkeys[origin.index()]) {
                        stats.bad_signature.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let their_proxy = schedule.proxy_of(origin, msg.envelope.frame);
                    if their_proxy == me {
                        // Proxy role: forward to two subscribers (a fixed
                        // demo subscription ring).
                        for k in 1..=2u32 {
                            let target = (origin.0 + k) % players as u32;
                            if target != me.0 && target != origin.0 {
                                let _ = endpoint.send_to(addresses[&target], &payload);
                                stats.forwarded.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            // Final drain so late packets are still counted.
            while let Ok(Some((_, _, payload))) = endpoint.try_recv() {
                if let Ok(msg) = SignedEnvelope::decode(&payload) {
                    let origin = msg.envelope.from;
                    if msg.verify(&pubkeys[origin.index()])
                        && schedule.proxy_of(origin, msg.envelope.frame) != me
                    {
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("player thread");
    }

    println!("sent to proxies:      {}", stats.sent.load(Ordering::Relaxed));
    println!("forwarded by proxies: {}", stats.forwarded.load(Ordering::Relaxed));
    println!("delivered & verified: {}", stats.delivered.load(Ordering::Relaxed));
    println!("signature failures:   {}", stats.bad_signature.load(Ordering::Relaxed));

    // WATCHMEN_TELEMETRY=prom|json dumps everything the run recorded.
    watchmen::telemetry::dump_from_env("udp_overlay");
}
