//! Kill-and-restart crash loop for the durable reputation store.
//!
//! ```sh
//! cargo run --release --example store_crashloop
//! ```
//!
//! The parent process spawns itself as a child (role selected by
//! `WATCHMEN_CRASHLOOP_ROLE=child`) working through a deterministic
//! stream of report-outcome operations against a [`ReputationStore`]
//! on a real directory, committing (fsync) after every operation and
//! logging each *acknowledged* ban to `acked.txt` only after the
//! commit returns. Then it crashes the child, two ways:
//!
//! * **SIGKILL cycles** — the parent kills the child after a random
//!   few milliseconds, mid-run, with no warning;
//! * **scripted cycles** — the child runs under
//!   `WATCHMEN_STORE_FAULTS=crash_at=<n>`, and the fault shim aborts
//!   the process on exactly the n-th I/O operation (an append, fsync
//!   or snapshot replace — so crash points land *inside* commit and
//!   compaction paths deterministically).
//!
//! After every crash the parent re-opens the store and checks the
//! contract the store promises:
//!
//! 1. recovered per-identity counts equal a reference replay of the
//!    same operation prefix (no invented or lost reports);
//! 2. every ban acknowledged before the crash is still present
//!    (ack = durable);
//! 3. no identity outside the reference ban set is banned (a crash can
//!    never *create* a ban — no false bans);
//! 4. one commit after recovery converges the ban set exactly to the
//!    reference (torn-off unacknowledged bans are re-staged).
//!
//! A final fault-free cycle runs the stream to completion. The run
//! prints the machine-parseable `crashloop summary:` line that ci.sh
//! gates on and exits non-zero on any divergence.
//!
//! Knobs via `WATCHMEN_CRASHLOOP` (comma-separated `key=value`):
//! `cycles` (crash cycles before the clean finish, default 8), `ops`
//! (total operations in the stream, default 3000), `seed`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

use watchmen::store::{Dir, FaultDir, FaultSpec, FsDir, RepState, ReputationStore, StorePolicy};

/// Identities in the deterministic stream (first `CHEATERS` cheat).
const POPULATION: u64 = 32;
/// Identities whose every outcome falls below the ban threshold.
const CHEATERS: u64 = 8;
/// Reports contributed by every operation — recovery divides the
/// report total by this to find how far the stream got.
const REPORTS_PER_OP: u64 = 10;
/// WAL size that triggers compaction inside the child's commit loop.
const COMPACT_WAL_BYTES: u64 = 8 * 1024;

/// Harness configuration, from `WATCHMEN_CRASHLOOP`.
#[derive(Clone, Copy)]
struct Config {
    cycles: u64,
    ops: u64,
    seed: u64,
}

impl Config {
    fn from_env() -> Self {
        let mut out = Config { cycles: 8, ops: 3000, seed: 2013 };
        let Ok(spec) = std::env::var("WATCHMEN_CRASHLOOP") else { return out };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("WATCHMEN_CRASHLOOP: expected key=value, got {part:?}"));
            let value: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("WATCHMEN_CRASHLOOP: bad number {value:?} for {key}"));
            match key {
                "cycles" => out.cycles = value,
                "ops" => out.ops = value,
                "seed" => out.seed = value,
                other => panic!("WATCHMEN_CRASHLOOP: unknown knob {other:?}"),
            }
        }
        assert!(out.ops > 0, "WATCHMEN_CRASHLOOP: ops must be positive");
        out
    }
}

/// SplitMix64-style finalizer — one deterministic draw per operation,
/// independent of where in the stream a restarted child resumes.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// The i-th operation of the stream: `(identity, ok, failed)` with
/// `ok + failed == REPORTS_PER_OP`. Honest identities fail at most 1
/// report in 10 (≥ 90 % acceptable — never bannable under the default
/// 85 % threshold); cheaters fail 2–4 (≤ 80 % — always bannable once
/// they reach the report minimum).
fn op_record(seed: u64, i: u64) -> (u64, u32, u32) {
    let index = i % POPULATION;
    let identity = 1000 + index;
    let draw = mix(seed ^ 0xC0FF_EE00 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let failed = if index < CHEATERS { 2 + (draw % 3) as u32 } else { (draw % 2) as u32 };
    (identity, REPORTS_PER_OP as u32 - failed, failed)
}

/// How many whole operations a recovered state reflects. Every
/// operation lands exactly [`REPORTS_PER_OP`] reports in one record,
/// and recovery only ever applies whole records, so the report total
/// is always an exact multiple.
fn ops_applied(state: &RepState) -> u64 {
    let reports: u64 = state.iter().map(|(_, e)| e.total()).sum();
    assert!(
        reports.is_multiple_of(REPORTS_PER_OP),
        "recovered report total {reports} is not a multiple of {REPORTS_PER_OP} — \
         a partial record was applied",
    );
    reports / REPORTS_PER_OP
}

/// Replays operations `0..ops` into a fresh in-memory store — the
/// reference every recovered state is compared against.
fn reference_store(seed: u64, ops: u64) -> ReputationStore {
    let dir = watchmen::store::MemDir::new();
    let (mut store, _) = ReputationStore::open(Box::new(dir), StorePolicy::default())
        .expect("in-memory reference store cannot fail to open");
    for i in 0..ops {
        let (identity, ok, failed) = op_record(seed, i);
        store.note_outcome(identity, ok, failed);
    }
    store.commit().expect("in-memory reference commit cannot fail");
    store
}

/// Bans the child acknowledged: every *complete* line of `acked.txt`.
/// A crash can tear the final line; an ack is only an ack once its
/// newline reached the file.
fn read_acked(dir: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(dir.join("acked.txt")) else {
        return Vec::new();
    };
    let mut lines: Vec<&str> = text.split('\n').collect();
    lines.pop(); // "" after the final newline, or a torn fragment
    let mut acked: Vec<u64> = lines.iter().filter_map(|line| line.trim().parse().ok()).collect();
    acked.sort_unstable();
    acked.dedup();
    acked
}

// ---------------------------------------------------------------------
// Child: apply the stream until done or dead
// ---------------------------------------------------------------------

fn run_child(config: Config) -> ! {
    let dir_path = std::env::var("WATCHMEN_STORE_DIR").expect("child requires WATCHMEN_STORE_DIR");
    let fs = FsDir::open(&dir_path).expect("open store dir");
    let dir: Box<dyn Dir> = match FaultSpec::from_env() {
        Some(spec) => Box::new(FaultDir::new(fs, spec)),
        None => Box::new(fs),
    };
    let (mut store, report) = match ReputationStore::open(dir, StorePolicy::default()) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("child: recovery failed: {e}");
            std::process::exit(2);
        }
    };
    let start = ops_applied(store.state());
    eprintln!(
        "child: recovered {start}/{} ops (snapshot={}, wal_records={}, restaged_bans={})",
        config.ops, report.snapshot_loaded, report.wal_records, report.restaged_bans,
    );

    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(Path::new(&dir_path).join("acked.txt"))
        .expect("open ack log");

    for i in start..config.ops {
        let (identity, ok, failed) = op_record(config.seed, i);
        store.note_outcome(identity, ok, failed);
        match store.commit_and_maybe_compact(COMPACT_WAL_BYTES) {
            Ok(receipt) => {
                for (identity, suspicion) in &receipt.new_bans {
                    // Ack only after the commit fsync returned: from
                    // here on the ban must survive any crash.
                    writeln!(acks, "{identity}").expect("append ack");
                    acks.flush().expect("flush ack");
                    eprintln!("child: op {i}: acked ban of {identity} ({suspicion}‰)");
                }
            }
            Err(e) => {
                eprintln!("child: commit failed at op {i}: {e}");
                std::process::exit(3);
            }
        }
    }
    eprintln!("child: stream complete at op {}", config.ops);
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// Parent: crash, recover, check — repeat
// ---------------------------------------------------------------------

/// What one recovery audit observed.
struct Audit {
    /// Whole operations the recovered state reflects.
    ops: u64,
    /// Contract violations found (0 on a healthy recovery).
    divergences: u64,
    /// Torn-off unacknowledged bans recovery re-staged.
    restaged: u64,
    /// The ban set after the convergence commit.
    banned: Vec<u64>,
}

/// One recovery audit after a crash (or after the clean finish).
fn verify(store_dir: &Path, config: Config, acked: &[u64]) -> Audit {
    let mut divergences = 0u64;
    let mut fail = |what: String| {
        eprintln!("DIVERGENCE: {what}");
        divergences += 1;
    };

    let fs = FsDir::open(store_dir).expect("open store dir for verify");
    let (mut store, report) = match ReputationStore::open(Box::new(fs), StorePolicy::default()) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("DIVERGENCE: recovery failed outright: {e}");
            return Audit { ops: 0, divergences: 1, restaged: 0, banned: Vec::new() };
        }
    };
    let ops = ops_applied(store.state());
    let reference = reference_store(config.seed, ops);

    // (1) Counts: the recovered prefix is exactly the replayed prefix.
    if store.state().counts_digest() != reference.state().counts_digest() {
        fail(format!("recovered counts at {ops} ops differ from reference replay"));
    }

    // (2) Acked bans survived the crash — before any new commit.
    for &identity in acked {
        if !store.is_banned(identity) {
            fail(format!("acked ban of {identity} lost after recovery at {ops} ops"));
        }
    }

    // (3) No false bans: recovered bans ⊆ reference bans.
    let reference_bans = reference.banned_identities();
    for identity in store.banned_identities() {
        if !reference_bans.contains(&identity) {
            fail(format!("false ban of {identity} appeared after recovery"));
        }
    }

    // (4) One commit converges: re-staged torn bans land, and the ban
    // set equals the reference exactly.
    store.commit().expect("post-recovery commit");
    if store.banned_identities() != reference_bans {
        fail(format!(
            "ban set did not converge at {ops} ops: recovered {:?} vs reference {reference_bans:?}",
            store.banned_identities(),
        ));
    }

    Audit { ops, divergences, restaged: report.restaged_bans, banned: store.banned_identities() }
}

fn spawn_child(store_dir: &Path, config: Config, faults: Option<&str>) -> std::process::Child {
    let exe = std::env::current_exe().expect("current exe");
    let mut command = Command::new(exe);
    command
        .env("WATCHMEN_CRASHLOOP_ROLE", "child")
        .env("WATCHMEN_STORE_DIR", store_dir)
        .env(
            "WATCHMEN_CRASHLOOP",
            format!("cycles={},ops={},seed={}", config.cycles, config.ops, config.seed),
        )
        .stderr(std::process::Stdio::inherit());
    match faults {
        Some(spec) => command.env("WATCHMEN_STORE_FAULTS", spec),
        None => command.env_remove("WATCHMEN_STORE_FAULTS"),
    };
    command.spawn().expect("spawn crashloop child")
}

fn main() {
    let config = Config::from_env();
    if std::env::var("WATCHMEN_CRASHLOOP_ROLE").as_deref() == Ok("child") {
        run_child(config);
    }

    let store_dir: PathBuf =
        std::env::var("WATCHMEN_STORE_DIR").map(PathBuf::from).unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("watchmen-crashloop-{}", std::process::id()))
        });
    // Each run starts from empty media so the op stream and crash
    // points are reproducible.
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("create store dir");
    println!(
        "crashloop: {} ops over {} identities, {} crash cycles, store at {}…",
        config.ops,
        POPULATION,
        config.cycles,
        store_dir.display(),
    );

    let mut sigkills = 0u64;
    let mut aborts = 0u64;
    let mut clean_exits = 0u64;
    let mut divergences = 0u64;
    let mut restaged_total = 0u64;
    let mut progress = String::new();

    for cycle in 0..config.cycles {
        let scripted = cycle % 2 == 1;
        let fault_spec = scripted.then(|| {
            // Land crash points across the whole commit + compaction
            // I/O range: ops 10..~500 cover first-commit appends,
            // fsyncs mid-stream, and snapshot replaces. Short writes
            // make the crash able to strand a *partial* frame on the
            // real filesystem (abort alone never tears a completed
            // write) — recovery must then skip the torn tail.
            let crash_at = 10 + mix(config.seed ^ cycle) % 490;
            format!("seed={},crash_at={crash_at},short=150", config.seed ^ cycle)
        });
        let mut child = spawn_child(&store_dir, config, fault_spec.as_deref());
        if !scripted {
            // Random few milliseconds of progress, then SIGKILL with
            // no warning — whatever write was in flight stays torn.
            let delay = 3 + mix(config.seed ^ (cycle << 32)) % 60;
            std::thread::sleep(Duration::from_millis(delay));
            let _ = child.kill();
        }
        let status = child.wait().expect("wait for child");
        let outcome = match (status.code(), scripted) {
            (Some(0), _) => {
                clean_exits += 1;
                "finished early"
            }
            (_, true) => {
                aborts += 1;
                "aborted at scripted I/O op"
            }
            (_, false) => {
                sigkills += 1;
                "SIGKILLed mid-write"
            }
        };

        let acked = read_acked(&store_dir);
        let audit = verify(&store_dir, config, &acked);
        divergences += audit.divergences;
        restaged_total += audit.restaged;
        let _ = writeln!(
            progress,
            "cycle {cycle}: child {outcome} at {}/{} ops, {} acked bans, \
             {} re-staged, {} divergences",
            audit.ops,
            config.ops,
            acked.len(),
            audit.restaged,
            audit.divergences,
        );
    }
    print!("{progress}");

    // Clean final cycle: no faults, no kill — the stream must finish.
    let status = spawn_child(&store_dir, config, None).wait().expect("wait for final child");
    let completed = status.code() == Some(0);
    if !completed {
        eprintln!("DIVERGENCE: fault-free final cycle did not complete: {status}");
        divergences += 1;
    }
    let acked = read_acked(&store_dir);
    let audit = verify(&store_dir, config, &acked);
    divergences += audit.divergences;
    if completed && audit.ops != config.ops {
        eprintln!("DIVERGENCE: final recovery sees {} ops, expected {}", audit.ops, config.ops);
        divergences += 1;
    }
    // Every cheater must end up banned, every honest identity clean.
    // (Acked is a *subset* of banned: a ban can become durable with
    // its acknowledgement torn off — durability is the contract, the
    // ack line is merely the client's receipt.)
    let expected_bans: Vec<u64> = (0..CHEATERS).map(|i| 1000 + i).collect();
    if completed && audit.banned != expected_bans {
        eprintln!("DIVERGENCE: final ban set {:?}, expected {expected_bans:?}", audit.banned);
        divergences += 1;
    }
    if acked.iter().any(|identity| !audit.banned.contains(identity)) {
        eprintln!("DIVERGENCE: acked bans {acked:?} not all present in {:?}", audit.banned);
        divergences += 1;
    }

    let ok = divergences == 0 && completed && !acked.is_empty();
    println!(
        "crashloop summary: cycles={} sigkills={sigkills} aborts={aborts} \
         finished_early={clean_exits} ops={} acked_bans={} restaged={restaged_total} \
         divergences={divergences} ok={ok}",
        config.cycles,
        audit.ops,
        acked.len(),
    );
    if !ok {
        eprintln!("crashloop FAILED");
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&store_dir);
}
