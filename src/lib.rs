//! Facade crate re-exporting the Watchmen workspace.
//!
//! Downstream users can depend on `watchmen` alone and reach every subsystem:
//!
//! ```
//! use watchmen::math::Vec3;
//! let v = Vec3::new(1.0, 2.0, 3.0);
//! assert_eq!(v.x, 1.0);
//! ```
pub use watchmen_bench as bench;
pub use watchmen_core as core;
pub use watchmen_crypto as crypto;
pub use watchmen_fleet as fleet;
pub use watchmen_game as game;
pub use watchmen_math as math;
pub use watchmen_net as net;
pub use watchmen_sim as sim;
pub use watchmen_store as store;
pub use watchmen_telemetry as telemetry;
pub use watchmen_world as world;
