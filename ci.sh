#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step below runs
# without network access. This script is the single source of truth; the
# GitHub Actions workflow just calls it.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> chrome trace smoke (deathmatch, 8 players, 200 frames)"
TRACE_OUT=/tmp/watchmen-trace.json
rm -f "$TRACE_OUT"
WATCHMEN_TRACE="chrome:$TRACE_OUT" \
    cargo run --release --example deathmatch 8 200 > /dev/null
python3 - "$TRACE_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X" and "dur" in e]
assert events, "chrome trace has no events"
assert spans, "chrome trace has no complete (ph=X) spans"
print(f"trace OK: {len(events)} events, {len(spans)} complete spans")
EOF

echo "CI OK"
