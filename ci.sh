#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step below runs
# without network access. This script is the single source of truth; the
# GitHub Actions workflow just calls it.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> chrome trace smoke (deathmatch, 8 players, 200 frames)"
TRACE_OUT=/tmp/watchmen-trace.json
rm -f "$TRACE_OUT"
WATCHMEN_TRACE="chrome:$TRACE_OUT" \
    cargo run --release --example deathmatch 8 200 > /dev/null
python3 - "$TRACE_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X" and "dur" in e]
assert events, "chrome trace has no events"
assert spans, "chrome trace has no complete (ph=X) spans"
print(f"trace OK: {len(events)} events, {len(spans)} complete spans")
EOF

echo "==> faulted soak (16 secured nodes, burst loss + duplication + proxy crash)"
SOAK_OUT=/tmp/watchmen-soak.txt
WATCHMEN_FAULTS="loss=0.05,dup=0.01,reorder=0.25,reorder_ms=40,seed=9" \
    cargo run --release --example deathmatch 8 200 > "$SOAK_OUT"
python3 - "$SOAK_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"fault summary: (.*)", text)
assert m, "no fault summary line in deathmatch output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["retransmits"] > 0, f"burst loss never forced a retransmission: {kv}"
assert kv["abandoned"] == 0, f"control messages abandoned: {kv}"
assert kv["pending_handoffs"] == 0, f"unrecovered handoff chains: {kv}"
assert kv["fallbacks"] >= 1, f"crashed proxy never triggered a fallback: {kv}"
assert kv["severe_false_verdicts"] == 0, f"false cheat verdicts under faults: {kv}"
assert kv["dup"] > 0 and kv["dropped"] > 0, f"fault plan never engaged: {kv}"
print(f"soak OK: {m.group(1)}")
EOF

echo "==> churn soak (16 veterans + 4 mid-game joins, leaves, evictions under 5% burst loss)"
CHURN_OUT=/tmp/watchmen-churn.txt
WATCHMEN_CHURN=soak \
    cargo run --release --example deathmatch 8 200 > "$CHURN_OUT"
python3 - "$CHURN_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"churn summary: (.*)", text)
assert m, "no churn summary line in deathmatch output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["joins"] >= 4, f"mid-game joins never applied: {kv}"
assert kv["leaves"] >= 2, f"graceful leaves never applied: {kv}"
assert kv["evictions"] >= 2, f"crash evictions never applied: {kv}"
assert kv["joiners_converged"] == kv["joins"], f"a joiner missed its bootstrap window: {kv}"
assert kv["roster_agreement"] == 1, f"rosters diverged at a renewal boundary: {kv}"
assert kv["false_verdicts"] == 0, f"churn produced false cheat verdicts: {kv}"
assert kv["bad_signatures"] == 0, f"churn traffic scored as signature failures: {kv}"
print(f"churn OK: {m.group(1)}")
EOF

echo "==> fleet soak + live observability plane (256 matches x 16 bots, endpoint scraped mid-run)"
FLEET_OUT=/tmp/watchmen-fleet.txt
FLEET_BENCH_DIR=/tmp/watchmen-fleet-bench
FLEET_AUDIT=/tmp/watchmen-fleet-audit.jsonl
rm -rf "$FLEET_BENCH_DIR" && mkdir -p "$FLEET_BENCH_DIR"
rm -f "$FLEET_OUT" "$FLEET_AUDIT"
# Background run with the metrics endpoint up and a post-run hold window,
# so the scrape below is guaranteed a live server whether it lands
# mid-soak or just after.
WATCHMEN_FLEET="${WATCHMEN_FLEET:-matches=256,players=16,frames=160,workers=4,cheat_every=8,audit=1}" \
WATCHMEN_BENCH_OUT="$FLEET_BENCH_DIR" \
WATCHMEN_METRICS_ADDR=127.0.0.1:0 \
WATCHMEN_METRICS_HOLD_MS=60000 \
WATCHMEN_AUDIT="$FLEET_AUDIT" \
    cargo run --release --example fleet_soak > "$FLEET_OUT" &
FLEET_PID=$!
python3 - "$FLEET_OUT" <<'EOF'
import json, os, re, sys, time, urllib.request
# Wait for the endpoint to announce itself, then scrape it live.
addr = None
for _ in range(600):
    text = open(sys.argv[1]).read() if os.path.exists(sys.argv[1]) else ""
    m = re.search(r"metrics endpoint listening on (\S+)", text)
    if m:
        addr = m.group(1)
        break
    time.sleep(0.1)
assert addr, "fleet_soak never announced its metrics endpoint"

health = urllib.request.urlopen(f"http://{addr}/healthz", timeout=5).read().decode()
assert health.strip() == "ok", f"healthz said {health!r}"

resp = urllib.request.urlopen(f"http://{addr}/metrics", timeout=5)
ctype = resp.headers.get("Content-Type", "")
assert ctype.startswith("text/plain; version=0.0.4"), f"bad content type {ctype!r}"
body = resp.read().decode()

# Prometheus exposition conformance: every family has a TYPE line before
# its samples, sample lines parse, and no internal `_ms` names leak out
# (millisecond histograms must export as `_seconds`).
typed = set()
sample_re = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+\-]+|NaN)$')
samples = 0
for line in body.splitlines():
    if not line or line.startswith("# HELP"):
        continue
    if line.startswith("# TYPE"):
        parts = line.split()
        assert len(parts) == 4 and parts[3] in ("counter", "gauge", "histogram"), line
        typed.add(parts[2])
        continue
    m = sample_re.match(line)
    assert m, f"unparseable sample line: {line!r}"
    name = m.group(1)
    samples += 1
    base = re.sub(r"_(bucket|sum|count)$", "", name)
    assert base in typed or name in typed, f"sample before TYPE: {line!r}"
    assert not base.endswith("_ms") and "_ms_" not in name, f"raw ms name leaked: {name}"
assert samples > 0, "scrape returned no samples"
assert 'fleet_quanta_total{shard="0"}' in body, "per-shard rollup labels missing"
assert "fleet_matches{state=" in body, "match lifecycle gauges missing"
assert "_seconds_bucket{" in body, "no seconds-unit histograms in scrape"

jbody = json.load(urllib.request.urlopen(f"http://{addr}/metrics.json", timeout=5))
assert isinstance(jbody, dict) and jbody, "metrics.json is not a non-empty object"

print(f"scrape OK: {samples} samples, {len(typed)} typed families, live at {addr}")
EOF
# Everything is flushed before the hold window, so wait for the bench
# record then cut the hold short.
for _ in $(seq 1 600); do
    grep -q "BENCH_detection.json" "$FLEET_OUT" && break
    sleep 0.1
done
kill "$FLEET_PID" 2>/dev/null || true
wait "$FLEET_PID" 2>/dev/null || true
python3 - "$FLEET_OUT" "$FLEET_BENCH_DIR/BENCH_fleet.json" \
    "$FLEET_BENCH_DIR/BENCH_detection.json" "$FLEET_AUDIT" <<'EOF'
import json, re, sys
text = open(sys.argv[1]).read()
m = re.search(r"fleet summary: (.*)", text)
assert m, "no fleet summary line in fleet_soak output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["completed"] == kv["matches"], f"matches lost: {kv}"
assert kv["panicked"] == 0, f"matches panicked: {kv}"
assert kv["false_verdicts"] == 0, f"fleet produced false cheat verdicts: {kv}"
assert kv["cheater_matches"] > 0, f"cheat injection never engaged: {kv}"
assert kv["detected_matches"] == kv["cheater_matches"], f"a cheater went undetected: {kv}"
assert kv["workers"] >= 4, f"fleet ran under-parallel: {kv}"
bench = json.load(open(sys.argv[2]))
assert bench["matches_per_sec"] > 0, f"bench record has no throughput: {bench}"
assert bench["ticks_per_sec"] > 0, f"bench record has no tick rate: {bench}"
assert bench["worst_shard_tick_p99_ms"] > 0, f"bench record has no shard p99: {bench}"
assert len(bench["shard_tick_p99_ms"]) == bench["workers"], f"missing shard p99s: {bench}"

# Detection-quality SLO: zero false verdicts, every injected cheater
# detected, time-to-detection p99 inside the frame budget.
s = re.search(r"detection slo: (.*)", text)
assert s, "no detection slo line in fleet_soak output"
slo = {k: v for k, v in
       (p.split("=") for p in s.group(1).split() if not p.startswith("check:"))}
assert slo["false_verdicts"] == "0", f"false verdicts on the audit stream: {slo}"
assert slo["detected"] == slo["injected"] != "0", f"missed cheaters: {slo}"
assert slo["ok"] == "1", f"detection slo failed: {slo}"

det = json.load(open(sys.argv[3]))
assert det["injected"] > 0 and det["detected"] == det["injected"], f"bad join: {det}"
assert det["false_verdicts"] == 0, f"false verdicts in bench record: {det}"
assert det["slo_ok"] == 1, f"slo_ok not set: {det}"
assert det["ttd_p99_frames"] <= det["ttd_budget_frames"], f"ttd blew the budget: {det}"
assert det["position_tp"] > 0, f"position check never scored a true positive: {det}"
assert det["plane_overhead_pct"] < 5.0, f"observability plane too expensive: {det}"

audit = [json.loads(l) for l in open(sys.argv[4])]
assert audit, "audit stream is empty"
assert all(set(r) >= {"match", "frame", "node", "kind", "check", "trace"} for r in audit)
kinds = {r["kind"] for r in audit}
assert "verdict" in kinds and "rating_transition" in kinds, f"kinds seen: {kinds}"

print(f"fleet OK: {m.group(1)}")
print(f"slo OK: {s.group(1)}")
print(f"bench OK: {bench['matches_per_sec']:.1f} matches/sec, "
      f"ttd p99 {det['ttd_p99_frames']:.0f} frames, "
      f"plane overhead {det['plane_overhead_pct']:.2f}%, "
      f"{len(audit)} audit records")
EOF

echo "==> live cluster smoke (6 OS processes over loopback UDP, scripted speed-hacker)"
LIVE_OUT=/tmp/watchmen-live.txt
cargo run --release --example live_cluster > "$LIVE_OUT"
python3 - "$LIVE_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"live summary: (.*)", text)
assert m, "no live summary line in live_cluster output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["completed"] == kv["players"], f"a node process died or hung: {kv}"
assert kv["false_verdicts"] == 0, f"live run framed an honest player: {kv}"
assert kv["detected"] == 1 and kv["severe"] > 0, f"speed-hacker went undetected: {kv}"
assert kv["heartbeats"] > 0, f"transport heartbeats never flowed: {kv}"
assert kv["malformed"] == 0 and kv["truncated"] == 0, f"wire corruption on loopback: {kv}"
print(f"live OK: {m.group(1)}")
EOF

echo "==> coordinated-adversary campaigns (collusion, sybil-flood, eclipse at fixed seeds)"
CAMPAIGN_OUT=/tmp/watchmen-campaign.txt
WATCHMEN_CAMPAIGN="runs=3,seed=2013,workers=2" \
WATCHMEN_BENCH_OUT=. \
    cargo run --release --example campaign_run > "$CAMPAIGN_OUT"
python3 - "$CAMPAIGN_OUT" BENCH_campaign.json <<'EOF'
import json, re, sys
text = open(sys.argv[1]).read()
lines = re.findall(r"^campaign (collusion|sybil-flood|eclipse): (.*)$", text, re.M)
names = [name for name, _ in lines]
assert names == ["collusion", "sybil-flood", "eclipse"], f"campaign lines: {names}"
for name, rest in lines:
    kv = {k: v for k, v in (p.split("=") for p in rest.split())}
    assert kv["ok"] == "true", f"{name} failed its SLO: {kv}"
    assert kv["false_verdicts"] == "0", f"{name} framed an honest actor: {kv}"
    assert int(kv["adversaries"]) > 0, f"{name} injected no adversaries: {kv}"
    assert kv["detected"] == kv["adversaries"], f"{name} missed adversaries: {kv}"
    assert int(kv["ttd_p99"]) <= int(kv["budget"]), f"{name} blew its ttd budget: {kv}"

bench = json.load(open(sys.argv[2]))
assert bench["ok"] == 1 and bench["panics"] == 0, f"campaign bench not ok: {bench}"
for name in ("collusion", "sybil_flood", "eclipse"):
    assert bench[f"{name}_detected"] == bench[f"{name}_adversaries"] > 0, f"{name}: {bench}"
    assert bench[f"{name}_false_verdicts"] == 0, f"{name}: {bench}"
    assert bench[f"{name}_ttd_p99_frames"] <= bench[f"{name}_ttd_budget_frames"], f"{name}: {bench}"
print("campaign OK: " + "; ".join(f"{n} {r}" for n, r in lines))
EOF

echo "==> store crash loop (8 kill/abort cycles against the durable reputation store)"
CRASH_OUT=/tmp/watchmen-crashloop.txt
WATCHMEN_STORE_DIR=/tmp/watchmen-crashloop-store \
WATCHMEN_CRASHLOOP="cycles=8,ops=3000,seed=2013" \
    cargo run --release --example store_crashloop > "$CRASH_OUT" 2>/dev/null
python3 - "$CRASH_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"crashloop summary: (.*)", text)
assert m, "no crashloop summary line in store_crashloop output"
kv = {k: v for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["ok"] == "true", f"crash loop failed: {kv}"
assert kv["divergences"] == "0", f"recovery diverged from the reference replay: {kv}"
assert int(kv["sigkills"]) + int(kv["aborts"]) > 0, f"no crash was ever injected: {kv}"
assert kv["ops"] == "3000", f"the final fault-free cycle never finished the stream: {kv}"
assert int(kv["acked_bans"]) > 0, f"no ban was ever acknowledged: {kv}"
print(f"crashloop OK: {m.group(1)}")
EOF

echo "==> reputation population soak (2000 matches, repeat offenders banned across matches)"
POP_OUT=/tmp/watchmen-population.txt
POP_STORE=/tmp/watchmen-population-store
rm -rf "$POP_STORE"
WATCHMEN_STORE_DIR="$POP_STORE" \
WATCHMEN_BENCH_OUT=. \
    cargo run --release --example population_run > "$POP_OUT"
python3 - "$POP_OUT" BENCH_reputation.json <<'EOF'
import json, re, sys
text = open(sys.argv[1]).read()
m = re.search(r"population summary: (.*)", text)
assert m, "no population summary line in population_run output"
kv = {k: v for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["ok"] == "true", f"population SLO failed: {kv}"
assert kv["false_bans"] == "0", f"an honest identity was banned: {kv}"
assert kv["banned"] == kv["cheaters"] != "0", f"a repeat cheater escaped the ban: {kv}"
assert int(kv["refused"]) > 0, f"bans never blocked later matchmaking: {kv}"
assert int(kv["commits"]) > 0 and int(kv["compactions"]) > 0, f"store never cycled: {kv}"

bench = json.load(open(sys.argv[2]))
assert bench["ok"] == 1, f"reputation bench not ok: {bench}"
assert bench["false_bans"] == 0, f"false bans in bench record: {bench}"
assert bench["cheaters_banned"] == bench["cheaters"] > 0, f"missed cheaters: {bench}"
assert bench["ttb_p99_matches"] <= 20, f"time-to-ban p99 too slow: {bench}"
assert bench["refused_admissions"] > 0, f"no cross-match refusals recorded: {bench}"
print(f"population OK: {m.group(1)}")
EOF

echo "CI OK"
