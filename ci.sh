#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step below runs
# without network access. This script is the single source of truth; the
# GitHub Actions workflow just calls it.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "CI OK"
