#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The workspace has zero external dependencies, so every step below runs
# without network access. This script is the single source of truth; the
# GitHub Actions workflow just calls it.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> chrome trace smoke (deathmatch, 8 players, 200 frames)"
TRACE_OUT=/tmp/watchmen-trace.json
rm -f "$TRACE_OUT"
WATCHMEN_TRACE="chrome:$TRACE_OUT" \
    cargo run --release --example deathmatch 8 200 > /dev/null
python3 - "$TRACE_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X" and "dur" in e]
assert events, "chrome trace has no events"
assert spans, "chrome trace has no complete (ph=X) spans"
print(f"trace OK: {len(events)} events, {len(spans)} complete spans")
EOF

echo "==> faulted soak (16 secured nodes, burst loss + duplication + proxy crash)"
SOAK_OUT=/tmp/watchmen-soak.txt
WATCHMEN_FAULTS="loss=0.05,dup=0.01,reorder=0.25,reorder_ms=40,seed=9" \
    cargo run --release --example deathmatch 8 200 > "$SOAK_OUT"
python3 - "$SOAK_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"fault summary: (.*)", text)
assert m, "no fault summary line in deathmatch output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["retransmits"] > 0, f"burst loss never forced a retransmission: {kv}"
assert kv["abandoned"] == 0, f"control messages abandoned: {kv}"
assert kv["pending_handoffs"] == 0, f"unrecovered handoff chains: {kv}"
assert kv["fallbacks"] >= 1, f"crashed proxy never triggered a fallback: {kv}"
assert kv["severe_false_verdicts"] == 0, f"false cheat verdicts under faults: {kv}"
assert kv["dup"] > 0 and kv["dropped"] > 0, f"fault plan never engaged: {kv}"
print(f"soak OK: {m.group(1)}")
EOF

echo "==> churn soak (16 veterans + 4 mid-game joins, leaves, evictions under 5% burst loss)"
CHURN_OUT=/tmp/watchmen-churn.txt
WATCHMEN_CHURN=soak \
    cargo run --release --example deathmatch 8 200 > "$CHURN_OUT"
python3 - "$CHURN_OUT" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"churn summary: (.*)", text)
assert m, "no churn summary line in deathmatch output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["joins"] >= 4, f"mid-game joins never applied: {kv}"
assert kv["leaves"] >= 2, f"graceful leaves never applied: {kv}"
assert kv["evictions"] >= 2, f"crash evictions never applied: {kv}"
assert kv["joiners_converged"] == kv["joins"], f"a joiner missed its bootstrap window: {kv}"
assert kv["roster_agreement"] == 1, f"rosters diverged at a renewal boundary: {kv}"
assert kv["false_verdicts"] == 0, f"churn produced false cheat verdicts: {kv}"
assert kv["bad_signatures"] == 0, f"churn traffic scored as signature failures: {kv}"
print(f"churn OK: {m.group(1)}")
EOF

echo "==> fleet soak (256 matches x 16 bots across 4 workers, cheater in every 8th match)"
FLEET_OUT=/tmp/watchmen-fleet.txt
FLEET_BENCH_DIR=/tmp/watchmen-fleet-bench
rm -rf "$FLEET_BENCH_DIR" && mkdir -p "$FLEET_BENCH_DIR"
WATCHMEN_FLEET="${WATCHMEN_FLEET:-matches=256,players=16,frames=160,workers=4,cheat_every=8}" \
WATCHMEN_BENCH_OUT="$FLEET_BENCH_DIR" \
    cargo run --release --example fleet_soak > "$FLEET_OUT"
python3 - "$FLEET_OUT" "$FLEET_BENCH_DIR/BENCH_fleet.json" <<'EOF'
import json, re, sys
text = open(sys.argv[1]).read()
m = re.search(r"fleet summary: (.*)", text)
assert m, "no fleet summary line in fleet_soak output"
kv = {k: int(v) for k, v in (p.split("=") for p in m.group(1).split())}
assert kv["completed"] == kv["matches"], f"matches lost: {kv}"
assert kv["panicked"] == 0, f"matches panicked: {kv}"
assert kv["false_verdicts"] == 0, f"fleet produced false cheat verdicts: {kv}"
assert kv["cheater_matches"] > 0, f"cheat injection never engaged: {kv}"
assert kv["detected_matches"] == kv["cheater_matches"], f"a cheater went undetected: {kv}"
assert kv["workers"] >= 4, f"fleet ran under-parallel: {kv}"
bench = json.load(open(sys.argv[2]))
assert bench["matches_per_sec"] > 0, f"bench record has no throughput: {bench}"
assert bench["ticks_per_sec"] > 0, f"bench record has no tick rate: {bench}"
assert bench["worst_shard_tick_p99_ms"] > 0, f"bench record has no shard p99: {bench}"
assert len(bench["shard_tick_p99_ms"]) == bench["workers"], f"missing shard p99s: {bench}"
print(f"fleet OK: {m.group(1)}")
print(f"bench OK: {bench['matches_per_sec']:.1f} matches/sec, "
      f"worst shard tick p99 {bench['worst_shard_tick_p99_ms']:.3f} ms")
EOF

echo "CI OK"
